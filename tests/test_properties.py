"""Property-based tests (hypothesis) on core data structures and
invariants: geometry, rank statistics, back-off scheduling, the
verifiable PRS, the observer's interval algebra, and the analytical
model's probability bounds.
"""

import math

from hypothesis import given, settings, strategies as st

from repro.core.arma import ArmaTrafficEstimator
from repro.core.observation import ChannelObserver
from repro.core.ranksum import rank_sum_test, wilcoxon_ranks
from repro.core.sysstate import SystemStateEstimator
from repro.geometry.circles import circle_area, circle_intersection_area
from repro.geometry.regions import RegionModel
from repro.mac.backoff import BackoffScheduler
from repro.mac.prng import VerifiableBackoffPrng, contention_window_for_attempt

finite_floats = st.floats(
    min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False
)


class TestGeometryProperties:
    @given(
        r1=st.floats(min_value=0.1, max_value=1000),
        r2=st.floats(min_value=0.1, max_value=1000),
        d=st.floats(min_value=0, max_value=3000),
    )
    def test_lens_bounded_by_smaller_circle(self, r1, r2, d):
        lens = circle_intersection_area(r1, r2, d)
        assert 0.0 <= lens <= circle_area(min(r1, r2)) + 1e-6

    @given(
        r=st.floats(min_value=1, max_value=1000),
        d1=st.floats(min_value=0, max_value=2000),
        d2=st.floats(min_value=0, max_value=2000),
    )
    def test_lens_monotone_in_distance(self, r, d1, d2):
        lo, hi = sorted((d1, d2))
        assert circle_intersection_area(r, r, lo) >= (
            circle_intersection_area(r, r, hi) - 1e-9
        )

    @given(
        sensing=st.floats(min_value=100, max_value=1000),
        separation=st.floats(min_value=10, max_value=900),
        offset=st.floats(min_value=10, max_value=900),
    )
    def test_region_fractions_are_probabilities(self, sensing, separation, offset):
        model = RegionModel(
            sensing_range=sensing,
            separation=min(separation, 2 * sensing - 1),
            interferer_offset=offset,
        )
        regions = model.regions
        assert 0.0 <= regions.left_exclusive_fraction <= 1.0
        assert 0.0 <= regions.right_exclusive_fraction <= 1.0
        assert regions.left_exclusive_fraction + regions.left_hidden_fraction == (
            1.0
        ) or abs(
            regions.left_exclusive_fraction
            + regions.left_hidden_fraction
            - 1.0
        ) < 1e-9


class TestRankProperties:
    @given(st.lists(finite_floats, min_size=1, max_size=60))
    def test_rank_sum_is_triangular_number(self, values):
        n = len(values)
        assert sum(wilcoxon_ranks(values)) == (
            n * (n + 1) / 2
        ) or math.isclose(sum(wilcoxon_ranks(values)), n * (n + 1) / 2)

    @given(st.lists(finite_floats, min_size=1, max_size=40))
    def test_ranks_within_bounds(self, values):
        ranks = wilcoxon_ranks(values)
        assert all(1.0 <= r <= len(values) for r in ranks)

    @given(
        x=st.lists(finite_floats, min_size=2, max_size=30),
        y=st.lists(finite_floats, min_size=2, max_size=30),
    )
    def test_p_values_valid_and_directional(self, x, y):
        less = rank_sum_test(x, y, "less").p_value
        greater = rank_sum_test(x, y, "greater").p_value
        two = rank_sum_test(x, y, "two-sided").p_value
        for p in (less, greater, two):
            assert 0.0 <= p <= 1.0
        # One-sided p-values overlap: they cannot both be tiny.
        assert less + greater >= 0.99

    @given(
        x=st.lists(st.integers(0, 1000), min_size=3, max_size=20),
        shift=st.integers(1, 500),
    )
    def test_shifting_y_down_lowers_less_p(self, x, shift):
        y_equal = [float(v) + 0.25 for v in x]  # break exact ties
        y_lower = [v - shift for v in y_equal]
        p_equal = rank_sum_test(x, y_equal, "less").p_value
        p_lower = rank_sum_test(x, y_lower, "less").p_value
        assert p_lower <= p_equal + 1e-9


class TestBackoffSchedulerProperties:
    @given(
        initial=st.integers(0, 1023),
        events=st.lists(
            st.tuples(st.integers(1, 300), st.integers(1, 300)), max_size=20
        ),
    )
    def test_counted_slots_conserved(self, initial, events):
        """Across arbitrary freeze/resume interleavings, the total slots
        counted equals the initial draw."""
        scheduler = BackoffScheduler()
        scheduler.start(initial)
        now = 0
        counted = 0
        for idle_gap, count_span in events:
            if scheduler.remaining == 0:
                break
            now += idle_gap
            scheduler.resume(now)
            span = min(count_span, scheduler.remaining)
            now += span
            before = scheduler.remaining
            scheduler.freeze(now)
            counted += before - scheduler.remaining
        if scheduler.remaining and scheduler.remaining > 0:
            counted += scheduler.remaining
        assert counted == initial

    @given(initial=st.integers(0, 1023), anchor=st.integers(0, 10_000))
    def test_completion_slot_arithmetic(self, initial, anchor):
        s = BackoffScheduler()
        s.start(initial)
        assert s.resume(anchor) == anchor + initial


class TestPrngProperties:
    @given(
        address=st.integers(0, 2**48 - 1),
        offset=st.integers(0, 100_000),
        attempt=st.integers(1, 7),
    )
    def test_backoff_in_window(self, address, offset, attempt):
        prng = VerifiableBackoffPrng(address)
        window = contention_window_for_attempt(attempt, 31, 1023)
        assert 0 <= prng.dictated_backoff(offset, attempt) <= window

    @given(address=st.integers(0, 2**48 - 1), offset=st.integers(0, 10_000))
    def test_monitor_agreement(self, address, offset):
        assert VerifiableBackoffPrng(address).dictated_backoff(offset, 1) == (
            VerifiableBackoffPrng(address).dictated_backoff(offset, 1)
        )


class TestObserverProperties:
    @given(
        intervals=st.lists(
            st.tuples(st.integers(0, 2000), st.integers(1, 100)), max_size=30
        ),
        query=st.tuples(st.integers(0, 2100), st.integers(0, 200)),
    )
    def test_busy_plus_idle_equals_span(self, intervals, query):
        obs = ChannelObserver(0, 1)
        for start, length in intervals:
            obs._add_busy_interval(start, start + length)
        q_start, q_len = query
        idle, busy = obs.idle_busy_counts(q_start, q_start + q_len)
        assert idle + busy == q_len
        assert busy <= q_len
        assert obs.busy_slots_in(q_start, q_start + q_len) == busy

    @given(
        intervals=st.lists(
            st.tuples(st.integers(0, 2000), st.integers(1, 100)), max_size=30
        )
    )
    def test_merged_intervals_disjoint_sorted(self, intervals):
        obs = ChannelObserver(0, 1)
        for start, length in intervals:
            obs._add_busy_interval(start, start + length)
        starts, ends = obs._busy_starts, obs._busy_ends
        for i in range(len(starts)):
            assert starts[i] < ends[i]
            if i:
                assert starts[i] > ends[i - 1]

    @given(
        intervals=st.lists(
            st.tuples(st.integers(0, 500), st.integers(1, 50)), max_size=15
        )
    )
    def test_busy_count_matches_bruteforce(self, intervals):
        obs = ChannelObserver(0, 1)
        covered = set()
        for start, length in intervals:
            obs._add_busy_interval(start, start + length)
            covered.update(range(start, start + length))
        assert obs.busy_slots_in(0, 600) == len([s for s in covered if s < 600])


class TestAnalyticalModelProperties:
    @given(
        rho=st.floats(min_value=0, max_value=1),
        n=st.floats(min_value=0, max_value=50),
        k=st.floats(min_value=0, max_value=50),
    )
    def test_probabilities_always_valid(self, rho, n, k):
        probs = SystemStateEstimator().probabilities(rho, n, k)
        assert 0.0 <= probs.p_busy_given_idle <= 1.0
        assert 0.0 <= probs.p_idle_given_busy <= 1.0
        assert math.isclose(
            probs.p_idle_given_idle, 1.0 - probs.p_busy_given_idle
        )

    @given(
        idle=st.integers(0, 10_000),
        busy=st.integers(0, 10_000),
        rho=st.floats(min_value=0, max_value=1),
    )
    def test_estimates_within_interval(self, idle, busy, rho):
        i_est, b_est = SystemStateEstimator().estimate_sender_slots(
            idle, busy, rho, 5, 5
        )
        total = idle + busy
        assert 0.0 <= i_est <= total
        assert 0.0 <= b_est <= total
        assert math.isclose(i_est + b_est, total)


class TestArmaProperties:
    @given(st.lists(st.floats(min_value=0, max_value=1), min_size=1, max_size=200))
    def test_estimate_bounded_by_input_range(self, samples):
        est = ArmaTrafficEstimator(alpha=0.9)
        for s in samples:
            est.update(s)
        assert min(samples) - 1e-9 <= est.estimate <= max(samples) + 1e-9

    @given(
        chunks=st.lists(
            st.tuples(st.integers(0, 100), st.integers(0, 100)), max_size=100
        )
    )
    def test_ingest_never_crashes_or_escapes_bounds(self, chunks):
        est = ArmaTrafficEstimator(sample_interval_slots=50)
        for busy, extra in chunks:
            est.ingest(busy, busy + extra)
            assert 0.0 <= est.estimate <= 1.0
