"""Unit tests for the Bianchi model and competing-terminal estimator."""

import pytest

from repro.core.bianchi import BianchiModel, CompetingTerminalEstimator


class TestBianchiModel:
    def test_tau_zero_collisions(self):
        model = BianchiModel(cw_min=31, stages=5)
        # p = 0: tau = 2/(W+1) with W = 32.
        assert model.tau_of_p(0.0) == pytest.approx(2.0 / 33.0)

    def test_tau_decreases_with_p(self):
        model = BianchiModel()
        taus = [model.tau_of_p(p) for p in (0.0, 0.2, 0.4, 0.6, 0.8)]
        assert taus == sorted(taus, reverse=True)

    def test_tau_no_singularity_at_half(self):
        model = BianchiModel()
        assert 0 < model.tau_of_p(0.5) < 1
        # Continuity around 0.5.
        assert model.tau_of_p(0.4999) == pytest.approx(
            model.tau_of_p(0.5001), rel=1e-2
        )

    def test_p_of_tau(self):
        model = BianchiModel()
        assert model.p_of_tau(0.1, 1) == 0.0
        assert model.p_of_tau(0.1, 2) == pytest.approx(0.1)

    def test_fixed_point_consistency(self):
        model = BianchiModel()
        for n in (2, 5, 10, 20, 50):
            tau, p = model.solve(n)
            assert tau == pytest.approx(model.tau_of_p(p), abs=1e-8)
            assert p == pytest.approx(model.p_of_tau(tau, n), abs=1e-8)

    def test_collision_probability_increases_with_n(self):
        model = BianchiModel()
        ps = [model.solve(n)[1] for n in (2, 5, 10, 20, 50)]
        assert ps == sorted(ps)

    def test_known_bianchi_value(self):
        """Bianchi (2000), W=32, m=5: for n=10 the collision probability
        is in the published ~0.25-0.35 band."""
        model = BianchiModel(cw_min=31, stages=5)
        _tau, p = model.solve(10)
        assert 0.2 < p < 0.4


class TestCompetingTerminalEstimator:
    def test_inversion_round_trip(self):
        """solve(n) -> p, then terminals_for(p) must recover n."""
        model = BianchiModel()
        estimator = CompetingTerminalEstimator(model)
        for n in (2, 5, 10, 25):
            _tau, p = model.solve(n)
            assert estimator.terminals_for(p) == pytest.approx(n, rel=0.02)

    def test_zero_collisions_means_one_terminal(self):
        assert CompetingTerminalEstimator().terminals_for(0.0) == 1.0

    def test_estimate_before_data(self):
        assert CompetingTerminalEstimator().estimate == 1.0

    def test_record_attempts_converges(self):
        model = BianchiModel()
        _tau, p_true = model.solve(8)
        estimator = CompetingTerminalEstimator(model, alpha=0.99)
        import random

        rng = random.Random(1)
        for _ in range(5000):
            estimator.record_attempt(rng.random() < p_true)
        assert estimator.collision_probability == pytest.approx(p_true, abs=0.05)
        assert estimator.estimate == pytest.approx(8, rel=0.35)

    def test_monotone_in_p(self):
        estimator = CompetingTerminalEstimator()
        ns = [estimator.terminals_for(p) for p in (0.05, 0.1, 0.2, 0.3, 0.4)]
        assert ns == sorted(ns)

    def test_invalid_p_rejected(self):
        with pytest.raises(ValueError):
            CompetingTerminalEstimator().terminals_for(1.5)

    def test_all_collisions_clamped(self):
        """p = 1.0 (every observed attempt collided) must not crash."""
        estimator = CompetingTerminalEstimator()
        estimator.record_attempt(True)
        assert estimator.collision_probability == 1.0
        assert estimator.estimate > 1.0
