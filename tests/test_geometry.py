"""Unit tests for repro.geometry (vectors, circles, regions)."""

import math

import pytest

from repro.geometry.circles import (
    circle_area,
    circle_intersection_area,
    crescent_area,
)
from repro.geometry.regions import RegionModel
from repro.geometry.vectors import (
    distance,
    distance_squared,
    midpoint,
    translate,
    unit_vector,
)


class TestVectors:
    def test_distance(self):
        assert distance((0, 0), (3, 4)) == 5.0

    def test_distance_squared(self):
        assert distance_squared((0, 0), (3, 4)) == 25.0

    def test_midpoint(self):
        assert midpoint((0, 0), (2, 4)) == (1.0, 2.0)

    def test_translate(self):
        assert translate((1, 1), 2, -1) == (3, 0)

    def test_unit_vector(self):
        ux, uy = unit_vector((0, 0), (0, 5))
        assert (ux, uy) == (0.0, 1.0)

    def test_unit_vector_coincident_rejected(self):
        with pytest.raises(ValueError):
            unit_vector((1, 1), (1, 1))


class TestCircleArea:
    def test_unit_circle(self):
        assert circle_area(1.0) == pytest.approx(math.pi)

    def test_zero_radius(self):
        assert circle_area(0.0) == 0.0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            circle_area(-1.0)


class TestIntersectionArea:
    def test_disjoint(self):
        assert circle_intersection_area(1, 1, 3) == 0.0

    def test_touching_externally(self):
        assert circle_intersection_area(1, 1, 2) == 0.0

    def test_concentric(self):
        assert circle_intersection_area(2, 1, 0) == pytest.approx(math.pi)

    def test_contained(self):
        assert circle_intersection_area(5, 1, 2) == pytest.approx(math.pi)

    def test_full_overlap_equal_circles(self):
        assert circle_intersection_area(2, 2, 0) == pytest.approx(4 * math.pi)

    def test_symmetric_in_radii(self):
        a = circle_intersection_area(2, 3, 2.5)
        b = circle_intersection_area(3, 2, 2.5)
        assert a == pytest.approx(b)

    def test_known_value_half_radius_separation(self):
        # Equal unit circles at distance 1: lens area has the closed form
        # 2*acos(1/2) - (1/2)*sqrt(3).
        expected = 2 * math.acos(0.5) - math.sqrt(3) / 2
        assert circle_intersection_area(1, 1, 1) == pytest.approx(expected)

    def test_subnormal_distance_degenerates_to_containment(self):
        # Regression: 2*d*r underflows to zero for subnormal d; the
        # formula must fall back to the containment case, not divide
        # by zero.
        assert circle_intersection_area(0.25, 0.25, 5e-324) == pytest.approx(
            circle_area(0.25)
        )

    def test_monotone_decreasing_in_distance(self):
        areas = [circle_intersection_area(1, 1, d) for d in (0.0, 0.5, 1.0, 1.5, 2.0)]
        assert areas == sorted(areas, reverse=True)

    def test_matches_monte_carlo(self):
        import numpy as np

        rng = np.random.default_rng(0)
        r1, r2, d = 2.0, 1.5, 1.2
        pts = rng.uniform(-2, 3.5, size=(200_000, 2))
        inside = (
            (pts[:, 0] ** 2 + pts[:, 1] ** 2 <= r1**2)
            & ((pts[:, 0] - d) ** 2 + pts[:, 1] ** 2 <= r2**2)
        ).mean() * (5.5 * 5.5)
        assert circle_intersection_area(r1, r2, d) == pytest.approx(
            inside, rel=0.05
        )


class TestCrescentArea:
    def test_disjoint_is_full_circle(self):
        assert crescent_area(1, 1, 5) == pytest.approx(math.pi)

    def test_coincident_is_zero(self):
        assert crescent_area(1, 1, 0) == pytest.approx(0.0)

    def test_partial(self):
        full = circle_area(1)
        lens = circle_intersection_area(1, 1, 1)
        assert crescent_area(1, 1, 1) == pytest.approx(full - lens)


class TestRegionModel:
    def test_areas_positive(self):
        model = RegionModel()
        regions = model.regions
        for label, area in regions.as_dict().items():
            assert area > 0, label

    def test_a2_equals_a4(self):
        # Both are the S/R exclusive crescents of equal disks.
        regions = RegionModel().regions
        assert regions.a2 == pytest.approx(regions.a4)

    def test_fraction_identities(self):
        regions = RegionModel().regions
        assert regions.left_exclusive_fraction + regions.left_hidden_fraction == (
            pytest.approx(1.0)
        )
        assert 0 < regions.right_exclusive_fraction < 1

    def test_union_a5_larger_than_crescent_a5(self):
        union = RegionModel().regions.a5
        crescent = RegionModel(far_interferer_offset=250.0).regions.a5
        assert union > crescent

    def test_classify_partitions(self):
        model = RegionModel(separation=240.0)
        sender = (0.0, 0.0)
        monitor = (240.0, 0.0)
        # Points chosen in each region.
        assert model.classify((120.0, 0.0), sender, monitor) == "A3"
        assert model.classify((-400.0, 0.0), sender, monitor) == "A2"
        assert model.classify((640.0, 0.0), sender, monitor) == "A4"
        assert model.classify((-700.0, 0.0), sender, monitor) == "A1"
        assert model.classify((1000.0, 0.0), sender, monitor) == "A5"
        assert model.classify((240.0, 5000.0), sender, monitor) is None

    def test_classify_rejects_coincident_pair(self):
        model = RegionModel()
        with pytest.raises(ValueError):
            model.classify((-700.0, 0.0), (0.0, 0.0), (0.0, 0.0))

    def test_count_nodes(self):
        model = RegionModel(separation=240.0)
        counts = model.count_nodes(
            [(120.0, 0.0), (121.0, 0.0), (-700.0, 0.0), (9999.0, 9999.0)]
        )
        assert counts["A3"] == 2
        assert counts["A1"] == 1
        assert counts["A5"] == 0

    def test_expected_counts_scale_with_density(self):
        model = RegionModel()
        low = model.expected_counts(1e-5)
        high = model.expected_counts(2e-5)
        for label in low:
            assert high[label] == pytest.approx(2 * low[label])

    def test_expected_counts_rejects_zero_density(self):
        with pytest.raises(ValueError):
            RegionModel().expected_counts(0.0)

    def test_classification_matches_areas_by_monte_carlo(self):
        """Region areas and the classifier must agree (A2/A3/A4 only —
        A1/A5 classification uses the representative/union constructions
        whose analytic areas are definitionally consistent)."""
        import numpy as np

        model = RegionModel(separation=240.0)
        rng = np.random.default_rng(1)
        box = 1300.0
        n = 150_000
        pts = rng.uniform(-box, box, size=(n, 2)) + np.array([120.0, 0.0])
        labels = [model.classify(tuple(p)) for p in pts[:20_000]]
        area_box = (2 * box) ** 2
        frac_a3 = labels.count("A3") / 20_000
        assert frac_a3 * area_box == pytest.approx(model.regions.a3, rel=0.1)
