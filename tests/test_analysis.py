"""Tests for the offline analysis helpers (latency, ROC, summary)."""

import math

import pytest

from repro.analysis.latency import DetectionLatency, detection_latency
from repro.analysis.roc import roc_sweep
from repro.analysis.summary import summarize_estimation
from repro.core.records import BackoffObservation, Diagnosis, Verdict


class _FakeDetector:
    """Minimal stand-in exposing observations/verdicts/config."""

    def __init__(self, observations=(), verdicts=(), guard_band=0.0,
                 max_test_attempt=3):
        from repro.core.detector import DetectorConfig

        self.observations = list(observations)
        self.verdicts = list(verdicts)
        self.config = DetectorConfig(
            guard_band=guard_band, max_test_attempt=max_test_attempt
        )


def _obs(slot, dictated, estimated, attempt=1):
    return BackoffObservation(
        slot=slot,
        seq_off=slot,
        attempt=attempt,
        dictated=dictated,
        estimated=estimated,
        idle_slots=dictated,
        busy_slots=0,
        interval_slots=dictated + 3,
        rho=0.5,
        unambiguous=True,
    )


def _verdict(slot, malicious, deterministic=False):
    return Verdict(
        diagnosis=Diagnosis.MALICIOUS if malicious else Diagnosis.WELL_BEHAVED,
        p_value=0.001 if malicious else 0.9,
        sample_size=10,
        slot=slot,
        deterministic=deterministic,
    )


class TestDetectionLatency:
    def test_never_flagged(self):
        det = _FakeDetector(verdicts=[_verdict(100, False)])
        latency = detection_latency(det)
        assert not latency.flagged
        assert latency.first_flag_seconds == float("inf")

    def test_first_flag(self):
        det = _FakeDetector(
            observations=[_obs(s, 10, 10) for s in (10, 20, 30, 40)],
            verdicts=[_verdict(25, False), _verdict(35, True)],
        )
        latency = detection_latency(det)
        assert latency.flagged
        assert latency.first_flag_slot == 35
        assert latency.samples_at_flag == 3
        assert latency.first_flag_seconds == pytest.approx(35 * 20e-6)

    def test_deterministic_first(self):
        det = _FakeDetector(
            verdicts=[_verdict(50, True, deterministic=True), _verdict(60, True)]
        )
        assert detection_latency(det).deterministic_first

    def test_never_constructor(self):
        never = DetectionLatency.never()
        assert not never.flagged
        assert never.samples_at_flag == -1


class TestSummarizeEstimation:
    def test_empty(self):
        summary = summarize_estimation(_FakeDetector())
        assert summary.samples == 0
        assert math.isnan(summary.mean_error)

    def test_unbiased_samples(self):
        det = _FakeDetector(observations=[_obs(i, 10, 10) for i in range(10)])
        summary = summarize_estimation(det)
        assert summary.mean_error == 0.0
        assert summary.rmse == 0.0
        assert summary.relative_shift == 1.0
        assert summary.unambiguous_fraction == 1.0

    def test_cheating_shift(self):
        det = _FakeDetector(
            observations=[_obs(i, 20, 10) for i in range(10)]
        )
        summary = summarize_estimation(det)
        assert summary.relative_shift == pytest.approx(0.5)
        assert summary.mean_error == -10.0
        assert summary.rmse == 10.0

    def test_normalized_error(self):
        det = _FakeDetector(observations=[_obs(0, 32, 16)])
        summary = summarize_estimation(det)
        assert summary.mean_normalized_error == pytest.approx(-0.5)


class TestRocSweep:
    def _detector(self, shift, n=60, seed=0):
        import numpy as np

        rng = np.random.default_rng(seed)
        observations = []
        for i in range(n):
            dictated = int(rng.integers(0, 32))
            estimated = max(dictated * shift + rng.normal(0, 2), 0.0)
            observations.append(_obs(i * 100, dictated, estimated))
        return _FakeDetector(observations=observations)

    def test_roc_monotone_in_alpha(self):
        honest = self._detector(1.0, seed=1)
        cheat = self._detector(0.4, seed=2)
        points = roc_sweep(honest, cheat, sample_size=20)
        fars = [p.false_alarm_rate for p in points]
        dets = [p.detection_rate for p in points]
        assert fars == sorted(fars)
        assert dets == sorted(dets)

    def test_cheater_dominates_honest(self):
        honest = self._detector(1.0, seed=3)
        cheat = self._detector(0.4, seed=4)
        points = roc_sweep(honest, cheat, sample_size=20)
        for p in points:
            assert p.detection_rate >= p.false_alarm_rate

    def test_requires_full_windows(self):
        honest = self._detector(1.0, n=5)
        cheat = self._detector(0.5, n=5)
        with pytest.raises(ValueError):
            roc_sweep(honest, cheat, sample_size=20)
