"""The spatial-hash sensing index must be invisible to every query.

The uniform grid (`repro.geometry.spatial.SpatialGrid`) only *prunes*
candidates; the exact link predicate is re-applied on each one.  The
suite pins the two layers of that contract:

- the grid alone: the 3x3 neighborhood is a superset of any disk of
  radius <= cell_size, so filtering it by the exact distance equals
  the all-pairs oracle (`brute_force_in_range`) — hypothesis over
  random placements, plus seeded mobility trajectories where the
  incremental ``update`` must match a from-scratch ``rebuild``;
- the Medium on top: ``index="grid"`` and ``index="brute"`` answer
  neighbors / sensed_sources / sensors_of / can_decode / senses and
  the carrier-sense queries identically, through mobility epochs and
  active transmissions.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.geometry.spatial import (
    SpatialGrid,
    brute_force_in_range,
    cell_size_for_radius,
)
from repro.phy.channel import Channel
from repro.phy.medium import Medium, Transmission
from repro.phy.propagation import LogNormalShadowing
from repro.util.rng import RngStream

positions_strategy = st.lists(
    st.tuples(
        st.floats(min_value=-5000, max_value=5000, allow_nan=False),
        st.floats(min_value=-5000, max_value=5000, allow_nan=False),
    ),
    min_size=1,
    max_size=40,
)


class TestSpatialGrid:
    def test_key_is_floor_division(self):
        grid = SpatialGrid(100.0)
        assert grid.key((0.0, 0.0)) == (0, 0)
        assert grid.key((99.9, 100.0)) == (0, 1)
        assert grid.key((-0.1, -100.0)) == (-1, -1)

    def test_rebuild_then_membership(self):
        grid = SpatialGrid(50.0)
        grid.rebuild({0: (0, 0), 1: (10, 10), 2: (120, 0)})
        assert len(grid) == 3
        assert 1 in grid and 7 not in grid
        assert grid.cell_of(0) == grid.cell_of(1) == (0, 0)
        assert grid.cell_of(2) == (2, 0)
        assert grid.cell_count == 2

    def test_update_reports_only_cell_crossers(self):
        grid = SpatialGrid(50.0)
        grid.rebuild({0: (0, 0), 1: (10, 10), 2: (120, 0)})
        # 0 drifts within its cell, 1 crosses, 2 unchanged, 3 is new.
        moved = grid.update({0: (49, 0), 1: (60, 10), 2: (120, 0), 3: (5, 5)})
        assert sorted(moved) == [1, 3]
        assert grid.cell_of(1) == (1, 0)
        assert 3 in grid

    def test_update_drops_vanished_nodes(self):
        grid = SpatialGrid(50.0)
        grid.rebuild({0: (0, 0), 1: (200, 200)})
        moved = grid.update({0: (0, 0)})
        assert moved == []
        assert 1 not in grid
        assert len(grid) == 1
        assert grid.cell_count == 1

    def test_candidates_exclude_self(self):
        grid = SpatialGrid(50.0)
        grid.rebuild({0: (0, 0), 1: (10, 10), 2: (60, 0)})
        assert sorted(grid.candidates_of(0)) == [1, 2]
        assert sorted(grid.candidates_of(7)) == []  # unindexed: empty

    def test_occupied_cells_and_nodes_in(self):
        grid = SpatialGrid(50.0)
        grid.rebuild({0: (0, 0), 1: (10, 10), 2: (120, 0)})
        assert grid.occupied_cells() == [(0, 0), (2, 0)]
        assert grid.nodes_in((0, 0)) == (0, 1)
        assert grid.nodes_in((9, 9)) == ()

    @given(points=positions_strategy, radius=st.floats(min_value=1, max_value=1500))
    @settings(max_examples=60, deadline=None)
    def test_neighborhood_filtered_equals_brute_force(self, points, radius):
        positions = dict(enumerate(points))
        grid = SpatialGrid(cell_size_for_radius(radius))
        grid.rebuild(positions)
        for node_id in positions:
            oracle = brute_force_in_range(positions, node_id, radius)
            pruned = {
                other
                for other in grid.candidates_of(node_id)
                if other in brute_force_in_range(
                    {node_id: positions[node_id], other: positions[other]},
                    node_id,
                    radius,
                )
            }
            assert pruned == oracle

    @pytest.mark.parametrize("seed", [2, 11])
    def test_incremental_update_matches_rebuild_under_mobility(self, seed):
        """A grid maintained by `update` over a random walk must be
        indistinguishable from one rebuilt from scratch each epoch."""
        rng = RngStream(seed, "spatial-mobility")
        radius = 550.0
        positions = {i: rng.random_point(3000.0, 3000.0) for i in range(30)}
        incremental = SpatialGrid(cell_size_for_radius(radius))
        incremental.rebuild(positions)
        for _epoch in range(25):
            for node_id in positions:
                x, y = positions[node_id]
                positions[node_id] = (
                    x + rng.uniform(-300.0, 300.0),
                    y + rng.uniform(-300.0, 300.0),
                )
            incremental.update(positions)
            fresh = SpatialGrid(cell_size_for_radius(radius))
            fresh.rebuild(positions)
            assert incremental.occupied_cells() == fresh.occupied_cells()
            for node_id in positions:
                assert incremental.cell_of(node_id) == fresh.cell_of(node_id)
                assert set(incremental.candidates_of(node_id)) == set(
                    fresh.candidates_of(node_id)
                )
                oracle = brute_force_in_range(positions, node_id, radius)
                assert oracle <= set(incremental.candidates_of(node_id))


def _assert_adjacency_equal(grid_medium, brute_medium, node_ids):
    for node in node_ids:
        assert grid_medium.neighbors(node) == brute_medium.neighbors(node)
        assert grid_medium.sensed_sources(node) == brute_medium.sensed_sources(node)
        assert grid_medium.sensors_of(node) == brute_medium.sensors_of(node)
        for other in node_ids:
            assert grid_medium.can_decode(node, other) == (
                brute_medium.can_decode(node, other)
            )
            assert grid_medium.senses(node, other) == (
                brute_medium.senses(node, other)
            )


class TestMediumGridEquivalence:
    @pytest.mark.parametrize("seed", [3, 17, 41])
    def test_grid_and_brute_media_agree_under_mobility(self, seed):
        rng = RngStream(seed, "medium-grid-equivalence")
        nodes = 25
        grid_medium = Medium(Channel(), index="grid")
        brute_medium = Medium(Channel(), index="brute")
        assert grid_medium.index_mode == "grid"
        assert brute_medium.index_mode == "brute"
        node_ids = range(nodes)
        clock = 0
        live = []
        for _epoch in range(12):
            positions = {i: rng.random_point(3000.0, 3000.0) for i in range(nodes)}
            grid_medium.update_positions(positions)
            brute_medium.update_positions(positions)
            _assert_adjacency_equal(grid_medium, brute_medium, node_ids)
            # Drive a few transmissions so the carrier-sense queries are
            # answered from each index's own sensed sets.
            for _ in range(4):
                clock += 1
                sender = rng.integers(0, nodes)
                tx = Transmission(
                    sender=sender,
                    receiver=(sender + 1) % nodes,
                    start_slot=clock,
                    end_slot=clock + 5 + rng.integers(0, 20),
                )
                live.append(
                    (grid_medium.start_transmission(tx),
                     brute_medium.start_transmission(
                         Transmission(**tx.__dict__)))
                )
            for node in node_ids:
                assert grid_medium.senses_busy(node) == (
                    brute_medium.senses_busy(node)
                )
                assert grid_medium.busy_until(node) == brute_medium.busy_until(node)
                assert grid_medium.interferers_at(node, exclude_sender=None) == (
                    brute_medium.interferers_at(node, exclude_sender=None)
                )
            while len(live) > 3:
                g_id, b_id = live.pop(0)
                grid_medium.end_transmission(g_id)
                brute_medium.end_transmission(b_id)

    def test_auto_resolves_by_propagation_bound(self):
        assert Medium(Channel()).index_mode == "grid"
        shadowed = Channel(
            propagation=LogNormalShadowing(4.0, rng=RngStream(1, "shadow"))
        )
        assert Medium(shadowed).index_mode == "brute"

    def test_grid_mode_rejects_unbounded_propagation(self):
        shadowed = Channel(
            propagation=LogNormalShadowing(4.0, rng=RngStream(1, "shadow"))
        )
        with pytest.raises(ValueError, match="range_scale_bound"):
            Medium(shadowed, index="grid")

    def test_unknown_index_mode_rejected(self):
        with pytest.raises(ValueError, match="index"):
            Medium(Channel(), index="quadtree")

    def test_adjacency_snapshot_roundtrip(self):
        """Prewarm transport: snapshot -> install reproduces the lazy sets."""
        rng = RngStream(9, "snapshot")
        positions = {i: rng.random_point(2000.0, 2000.0) for i in range(15)}
        lazy = Medium(Channel(), index="grid")
        lazy.update_positions(positions)
        warmed = Medium(Channel(), index="grid")
        warmed.update_positions(positions)
        for node_id, sensed_from, sensed_by, decodes_from in lazy.adjacency_snapshot(
            sorted(positions)
        ):
            assert sensed_from == sorted(sensed_from)
            warmed.install_adjacency(node_id, sensed_from, sensed_by, decodes_from)
        _assert_adjacency_equal(warmed, lazy, sorted(positions))
