"""Tests for repro.obs.trace: the deterministic slot-clocked tracer.

The golden-fingerprint suite proves tracing never perturbs a run
(``test_golden_fingerprints.test_tracing_on_leaves_fingerprints_unchanged``);
these tests pin the tracer's own contract: slot-clocked timestamps,
bounded-ring flight recording, valid Chrome trace-event JSON, and
byte-identical same-seed traces.
"""

from __future__ import annotations

import json

import pytest

from repro.obs.trace import (
    DEFAULT_CAPACITY,
    PID_DETECTION,
    PID_ENGINE,
    PID_SIM,
    SpanTracer,
    active_tracer,
    disable_tracing,
    enable_tracing,
    reset_tracer,
    shared_tracer,
    tracing_enabled,
)
from repro.util.units import DEFAULT_SLOT_TIME_US


class TestSpanTracer:
    def test_slot_clocked_timestamps(self):
        tracer = SpanTracer(slot_time_us=20.0)
        tracer.span("tx.handshake", 100, 142, tid=3)
        (event,) = tracer.events()
        assert event.ts_us == 100 * 20.0
        assert event.dur_us == 42 * 20.0
        assert event.phase == "X"

    def test_default_slot_time_matches_units(self):
        assert SpanTracer().slot_time_us == float(DEFAULT_SLOT_TIME_US)

    def test_instant_uses_cursor_when_slot_omitted(self):
        tracer = SpanTracer()
        tracer.mark_slot(77)
        tracer.instant("medium.reconcile")
        (event,) = tracer.events()
        assert event.ts_us == 77 * tracer.slot_time_us

    def test_cursor_is_monotone(self):
        tracer = SpanTracer()
        tracer.mark_slot(50)
        tracer.mark_slot(10)  # stale marks never rewind the cursor
        assert tracer.cursor == 50

    def test_ring_keeps_newest_and_counts_drops(self):
        tracer = SpanTracer(capacity=4)
        for slot in range(10):
            tracer.instant("tick", slot=slot)
        assert len(tracer) == 4
        assert tracer.emitted == 10
        assert tracer.dropped == 6
        slots = [e.ts_us / tracer.slot_time_us for e in tracer.events()]
        assert slots == [6, 7, 8, 9]

    def test_rejects_nonpositive_capacity(self):
        with pytest.raises(ValueError, match="capacity"):
            SpanTracer(capacity=0)

    def test_chrome_export_is_valid_and_monotone(self):
        tracer = SpanTracer()
        tracer.span("b", 200, 300, tid=1, pid=PID_SIM)
        tracer.span("a", 100, 150, tid=2, pid=PID_SIM)
        tracer.instant("v", slot=120, tid=5, pid=PID_DETECTION)
        tracer.counter("engine.events", 110, {"events": 3.0}, pid=PID_ENGINE)
        doc = json.loads(tracer.to_json())
        events = doc["traceEvents"]
        # Metadata first, then data events sorted by timestamp.
        meta = [e for e in events if e["ph"] == "M"]
        data = [e for e in events if e["ph"] != "M"]
        assert [e["ph"] for e in events[: len(meta)]] == ["M"] * len(meta)
        timestamps = [e["ts"] for e in data]
        assert timestamps == sorted(timestamps)
        # Required trace-event keys present on every data event.
        for event in data:
            assert {"name", "ph", "ts", "pid", "tid", "cat"} <= set(event)
        spans = [e for e in data if e["ph"] == "X"]
        assert spans and all("dur" in e for e in spans)
        tracks = {(e["pid"], e["tid"]) for e in data}
        labeled = {
            (e["pid"], e["tid"]) for e in meta if e["name"] == "thread_name"
        }
        assert tracks <= labeled
        assert doc["otherData"]["clock"] == "slots"

    def test_same_inputs_byte_identical_json(self):
        def build():
            tracer = SpanTracer()
            tracer.span("tx.exchange", 10, 150, tid=4, args={"receiver": 5})
            tracer.instant("verdict.malicious", slot=140, pid=PID_DETECTION)
            return tracer.to_json()

        assert build() == build()

    def test_write_is_loadable(self, tmp_path):
        tracer = SpanTracer()
        tracer.span("tx.handshake", 0, 42, tid=1)
        path = tracer.write(tmp_path / "out.json")
        doc = json.loads(path.read_text())
        assert any(e["ph"] == "X" for e in doc["traceEvents"])


class TestTracingSwitch:
    def test_disabled_by_default(self):
        assert not tracing_enabled()
        assert active_tracer() is None

    def test_enable_disable_roundtrip(self):
        enable_tracing()
        try:
            assert tracing_enabled()
            assert active_tracer() is shared_tracer()
        finally:
            disable_tracing()
        assert active_tracer() is None

    def test_env_var_enables(self, monkeypatch):
        monkeypatch.setenv("REPRO_TRACE", "1")
        assert tracing_enabled()
        monkeypatch.setenv("REPRO_TRACE", "0")
        assert not tracing_enabled()

    def test_reset_tracer_replaces_shared(self):
        first = shared_tracer()
        fresh = reset_tracer(capacity=128)
        assert fresh is not first
        assert fresh.capacity == 128
        assert shared_tracer() is fresh

    def test_default_capacity_bounds_memory(self):
        assert shared_tracer().capacity == DEFAULT_CAPACITY


class TestEngineIntegration:
    def _run_demo_sim(self, seconds=1.0):
        from repro.experiments.scenarios import GridScenario

        sim, _sender, _monitor = GridScenario(load=0.6, seed=11).build()
        sim.run(seconds)
        return sim

    def test_engine_attaches_listener_and_traces(self):
        tracer = reset_tracer()
        enable_tracing()
        try:
            self._run_demo_sim()
        finally:
            disable_tracing()
        assert tracer.emitted > 0
        names = {e.name for e in tracer.events()}
        assert "engine.events" in names  # per-slot counter
        assert any(n.startswith("tx.") for n in names)  # transmission spans

    def test_disabled_engine_records_nothing(self):
        tracer = reset_tracer()
        self._run_demo_sim()
        assert tracer.emitted == 0

    def test_same_seed_traces_byte_identical(self):
        import itertools

        from repro.traffic import queue as traffic_queue

        def run():
            traffic_queue._packet_ids = itertools.count()
            tracer = reset_tracer()
            enable_tracing()
            try:
                self._run_demo_sim()
            finally:
                disable_tracing()
            return tracer.to_json()

        assert run() == run()
