"""Unit tests for the channel observer (the monitor's raw view)."""

import pytest

from repro.core.observation import ChannelObserver, joint_state_counts
from repro.phy.channel import Channel
from repro.phy.medium import Medium, Transmission


def _medium():
    m = Medium(Channel())
    m.update_positions({0: (0, 0), 1: (240, 0), 2: (480, 0), 9: (5000, 0)})
    return m


def _tx(sender, receiver, start, end, frame=None):
    return Transmission(
        sender=sender, receiver=receiver, start_slot=start, end_slot=end,
        kind="handshake", frame=frame,
    )


def _feed(observer, medium, transmissions, success=True):
    for tx in transmissions:
        observer.on_transmission_start(tx.start_slot, tx, medium)
    for tx in transmissions:
        observer.on_transmission_end(tx.end_slot, tx, success, medium)


class TestBusyIntervals:
    def test_single_interval(self):
        m = _medium()
        obs = ChannelObserver(1, 0)
        _feed(obs, m, [_tx(0, 1, 10, 20)])
        assert obs.busy_slots_in(0, 30) == 10
        assert obs.idle_busy_counts(0, 30) == (20, 10)

    def test_clipping(self):
        m = _medium()
        obs = ChannelObserver(1, 0)
        _feed(obs, m, [_tx(0, 1, 10, 20)])
        assert obs.busy_slots_in(15, 18) == 3
        assert obs.busy_slots_in(0, 10) == 0
        assert obs.busy_slots_in(20, 30) == 0

    def test_merge_overlapping(self):
        m = _medium()
        obs = ChannelObserver(1, 0)
        _feed(obs, m, [_tx(0, 1, 10, 20), _tx(2, 1, 15, 25)])
        assert obs.busy_slots_in(0, 40) == 15

    def test_merge_adjacent(self):
        m = _medium()
        obs = ChannelObserver(1, 0)
        _feed(obs, m, [_tx(0, 1, 10, 20), _tx(2, 1, 20, 30)])
        assert obs.busy_slots_in(0, 40) == 20
        assert obs.idle_stretches_in(0, 40) == 2  # before 10 and after 30

    def test_out_of_range_tx_ignored(self):
        m = _medium()
        obs = ChannelObserver(1, 0)
        _feed(obs, m, [_tx(9, 0, 10, 20)])  # node 9 is 5 km away
        assert obs.busy_slots_in(0, 30) == 0

    def test_own_transmission_is_busy(self):
        m = _medium()
        obs = ChannelObserver(1, 0)
        _feed(obs, m, [_tx(1, 0, 10, 20)])
        assert obs.busy_slots_in(0, 30) == 10
        assert obs.monitor_tx_slots == 10
        assert obs.own_tx_slots_in(0, 30) == 10
        assert obs.own_tx_slots_in(12, 15) == 3

    def test_insert_out_of_order(self):
        m = _medium()
        obs = ChannelObserver(1, 0)
        _feed(obs, m, [_tx(0, 1, 50, 60)])
        _feed(obs, m, [_tx(0, 1, 10, 20)])
        assert obs.busy_slots_in(0, 100) == 20
        assert obs.idle_stretches_in(0, 100) == 3

    def test_traffic_intensity(self):
        m = _medium()
        obs = ChannelObserver(1, 0)
        _feed(obs, m, [_tx(0, 1, 0, 25)])
        assert obs.traffic_intensity(0, 100) == pytest.approx(0.25)

    def test_empty_range(self):
        obs = ChannelObserver(1, 0)
        assert obs.idle_busy_counts(10, 10) == (0, 0)
        assert obs.idle_stretches_in(10, 10) == 0


class TestIdleStretches:
    def test_fully_idle(self):
        obs = ChannelObserver(1, 0)
        assert obs.idle_stretches_in(0, 100) == 1

    def test_fully_busy(self):
        m = _medium()
        obs = ChannelObserver(1, 0)
        _feed(obs, m, [_tx(0, 1, 0, 100)])
        assert obs.idle_stretches_in(0, 100) == 0

    def test_interior_gaps(self):
        m = _medium()
        obs = ChannelObserver(1, 0)
        _feed(obs, m, [_tx(0, 1, 10, 20), _tx(0, 1, 40, 50)])
        # Idle: [0,10), [20,40), [50,100) -> 3 stretches.
        assert obs.idle_stretches_in(0, 100) == 3


class TestTaggedObservations:
    def test_decoded_rts_recorded(self):
        m = _medium()
        obs = ChannelObserver(1, 0)
        frame = object()
        _feed(obs, m, [_tx(0, 1, 10, 20, frame=frame)])
        assert len(obs.observed) == 1
        assert obs.observed[0].rts is frame
        assert obs.observed[0].success

    def test_sensed_but_not_decodable(self):
        m = _medium()
        obs = ChannelObserver(1, 2)  # monitoring node 2 at 480 m
        _feed(obs, m, [_tx(2, 1, 10, 20, frame=object())])
        # Wait: node 2 at 240 m from node 1 is decodable; monitor node 0
        # instead, which is 480 m from node 2.
        obs = ChannelObserver(0, 2)
        _feed(obs, m, [_tx(2, 1, 30, 40, frame=object())])
        assert len(obs.observed) == 1
        assert obs.observed[0].rts is None  # sensed only

    def test_concurrent_interference_blocks_decode(self):
        m = _medium()
        obs = ChannelObserver(1, 0)
        jam = _tx(2, 1, 5, 30)
        rts = _tx(0, 1, 10, 20, frame=object())
        obs.on_transmission_start(5, jam, m)
        m.start_transmission(jam)
        obs.on_transmission_start(10, rts, m)
        obs.on_transmission_end(20, rts, False, m)
        assert obs.observed[0].rts is None

    def test_monitor_transmitting_blocks_decode(self):
        m = _medium()
        obs = ChannelObserver(1, 0)
        own = _tx(1, 2, 5, 30)
        m.start_transmission(own)
        rts = _tx(0, 1, 10, 20, frame=object())
        obs.on_transmission_start(10, rts, m)
        obs.on_transmission_end(20, rts, True, m)
        assert obs.observed[0].rts is None

    def test_retag_clears_history(self):
        m = _medium()
        obs = ChannelObserver(1, 0)
        _feed(obs, m, [_tx(0, 1, 10, 20, frame=object())])
        obs.retag(2)
        assert obs.tagged_id == 2
        assert obs.observed == []


class TestJointStateCounts:
    def test_partition_sums_to_range(self):
        m = _medium()
        a = ChannelObserver(1, 0)
        b = ChannelObserver(0, 1)
        _feed(a, m, [_tx(0, 1, 10, 20)])
        _feed(b, m, [_tx(0, 1, 10, 20)])
        counts = joint_state_counts(a, b, 0, 100)
        assert sum(counts.values()) == 100

    def test_disjoint_busy_periods(self):
        m = _medium()
        a = ChannelObserver(1, 0)
        b = ChannelObserver(0, 1)
        _feed(a, m, [_tx(2, 1, 0, 10)])   # node 2 sensed by 1, not by 0? 480m: sensed!
        counts = joint_state_counts(a, b, 0, 10)
        # node 2 is 480 m from node 0: still within sensing range, so b
        # missed it only because it wasn't fed.
        assert counts["BI"] == 10

    def test_both_busy(self):
        m = _medium()
        a = ChannelObserver(1, 0)
        b = ChannelObserver(0, 1)
        tx = _tx(0, 1, 5, 15)
        _feed(a, m, [tx])
        _feed(b, m, [tx])
        counts = joint_state_counts(a, b, 0, 20)
        assert counts["BB"] == 10
        assert counts["II"] == 10

    def test_empty_range(self):
        a = ChannelObserver(1, 0)
        b = ChannelObserver(0, 1)
        assert joint_state_counts(a, b, 5, 5)["II"] == 0
