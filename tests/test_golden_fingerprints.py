"""Golden-fingerprint regression suite.

Pins the sha256 fingerprints (metrics snapshot, audit log, detector
observations/verdicts) of four canonical same-seed scenarios against
committed ``tests/golden/*.json``.  Any refactor that changes what a
fixed seed produces — event ordering, estimator arithmetic, audit
record contents, metric counter names — trips these tests byte-for-byte
instead of silently shifting the reproduction's numbers.

The committed goldens were captured *before* the fault-injection
subsystem landed, so they double as the proof that ``repro.faults``
(disabled, its default) is a pure no-op: same-seed metrics/audit streams
are byte-identical to the pre-faults tree.

To regenerate intentionally (after a change that is *supposed* to move
the fingerprints)::

    PYTHONPATH=src python -m pytest tests/test_golden_fingerprints.py --update-golden

and commit the rewritten ``tests/golden/*.json`` with an explanation.
"""

import dataclasses
import hashlib
import itertools
import json
from pathlib import Path

import pytest

from repro.core.detector import DetectorConfig, reset_region_cache
from repro.experiments.runner import collect_detection_samples, reset_fidelity_cache
from repro.experiments.scenarios import (
    GridScenario,
    MultiMonitorGridScenario,
    RandomScenario,
)
from repro.mac.misbehavior import PercentageMisbehavior
from repro.obs.audit import DecisionAuditLog
from repro.obs.runtime import disable_metrics, enable_metrics, reset_metrics
from repro.traffic import queue as traffic_queue

GOLDEN_DIR = Path(__file__).parent / "golden"

CONFIG = DetectorConfig(sample_size=25, known_n=5, known_k=5)

#: Both statistical backends must reproduce the SAME committed goldens:
#: the batched kernel's equivalence contract is bit-exact p-values,
#: verdict streams, audit records, and metrics snapshots.
BACKENDS = {
    "scalar": CONFIG,
    "batched": dataclasses.replace(CONFIG, stats_backend="batched"),
}


def _fresh_process_state():
    """Rewind cross-run process state so same-seed runs are bytewise equal."""
    traffic_queue._packet_ids = itertools.count()
    reset_region_cache()
    reset_fidelity_cache()


def _sha(text):
    return hashlib.sha256(text.encode()).hexdigest()


def _audit_jsonl(audit):
    return "\n".join(
        json.dumps(r.to_dict(), sort_keys=True, separators=(",", ":"))
        for r in audit.records
    )


def _detector_text(detectors):
    lines = []
    for det in detectors:
        for obs in det.observations:
            lines.append(repr(obs))
        for verdict in det.verdicts:
            lines.append(repr(verdict))
    return "\n".join(lines)


def _run_single(config, make_scenario, pm, target_samples, max_duration_s):
    """One detection run (observatory path) under the shared registry."""
    audit = DecisionAuditLog()
    registry = reset_metrics()
    enable_metrics()
    try:
        detector = collect_detection_samples(
            make_scenario(),
            pm,
            detector_config=config,
            target_samples=target_samples,
            max_duration_s=max_duration_s,
            audit=audit,
        )
    finally:
        disable_metrics()
    if hasattr(detector, "retired_detectors"):  # MonitorHandoff
        detectors = [*detector.retired_detectors, detector.detector]
        extra = {"handoffs": detector.handoffs}
    else:
        detectors = [detector]
        extra = {}
    return detectors, audit, registry, extra


def _run_multi_monitor(config):
    """The dense 16-detector grid from the observatory equivalence suite."""
    from repro.core.observatory import SharedChannelObservatory

    scenario = MultiMonitorGridScenario(seed=7)
    taggeds = scenario.tagged_nodes()
    policies = {
        taggeds[0]: PercentageMisbehavior(60),
        taggeds[2]: PercentageMisbehavior(75),
    }
    sim, pairs = scenario.build(policies=policies)
    audit = DecisionAuditLog()
    registry = reset_metrics()
    enable_metrics()
    try:
        observatory = SharedChannelObservatory()
        sim.add_listener(observatory)
        detectors = [
            observatory.attach(
                monitor, tagged, config=config,
                separation=scenario.separation, audit=audit,
            )
            for monitor, tagged in pairs
        ]
        sim.run(4.0)
    finally:
        disable_metrics()
    return detectors, audit, registry, {}


SCENARIOS = {
    "grid": lambda config: _run_single(
        config, lambda: GridScenario(seed=5), 60, 150, 40.0
    ),
    "random": lambda config: _run_single(
        config, lambda: RandomScenario(seed=5), 50, 120, 40.0
    ),
    "mobile_handoff": lambda config: _run_single(
        config, lambda: RandomScenario(mobile=True, seed=23), 70, 400, 120.0
    ),
    "multi_monitor": _run_multi_monitor,
}


def capture(name, config=CONFIG):
    """Run one canonical scenario and produce its fingerprint dict."""
    _fresh_process_state()
    detectors, audit, registry, extra = SCENARIOS[name](config)
    snapshot = registry.snapshot()
    fingerprint = {
        "scenario": name,
        "observations": sum(len(d.observations) for d in detectors),
        "verdicts": sum(len(d.verdicts) for d in detectors),
        "audit_records": len(audit.records),
        "metrics_sha256": _sha(json.dumps(snapshot, sort_keys=True)),
        "audit_sha256": _sha(_audit_jsonl(audit)),
        "detector_sha256": _sha(_detector_text(detectors)),
    }
    fingerprint.update(extra)
    return fingerprint


@pytest.mark.parametrize("backend", sorted(BACKENDS))
@pytest.mark.parametrize("name", sorted(SCENARIOS))
def test_golden_fingerprint(name, backend, request):
    path = GOLDEN_DIR / f"{name}.json"
    fingerprint = capture(name, BACKENDS[backend])
    if request.config.getoption("--update-golden"):
        if backend != "scalar":
            pytest.skip("goldens are regenerated from the scalar backend")
        GOLDEN_DIR.mkdir(exist_ok=True)
        path.write_text(json.dumps(fingerprint, indent=2, sort_keys=True) + "\n")
        pytest.skip(f"regenerated {path}")
    assert path.exists(), (
        f"missing golden {path}; regenerate with --update-golden"
    )
    golden = json.loads(path.read_text())
    assert fingerprint == golden, (
        f"{name} [{backend} backend]: same-seed fingerprint drifted from "
        f"{path.name} — if the change is intentional, rerun with "
        "--update-golden and commit"
    )


def test_tracing_on_leaves_fingerprints_unchanged():
    """The flight recorder is a pure observer: with tracing enabled the
    same-seed run must reproduce the committed golden fingerprint
    exactly, while the tracer itself records a valid, slot-monotone
    Chrome trace."""
    from repro.obs.trace import (
        disable_tracing,
        enable_tracing,
        reset_tracer,
        shared_tracer,
    )

    golden = json.loads((GOLDEN_DIR / "grid.json").read_text())
    reset_tracer()
    enable_tracing()
    try:
        fingerprint = capture("grid")
        tracer = shared_tracer()
        assert tracer.emitted > 0
        doc = tracer.to_chrome_trace()
    finally:
        disable_tracing()
    assert fingerprint == golden, (
        "enabling tracing changed the run's verdict/metrics streams"
    )
    timestamps = [e["ts"] for e in doc["traceEvents"] if e["ph"] != "M"]
    assert timestamps == sorted(timestamps)
