"""Unit tests for the DCF MAC entity state machine."""

import pytest

from repro.mac.dcf import DcfMac, MacState
from repro.mac.digest import data_digest
from repro.mac.misbehavior import PercentageMisbehavior
from repro.traffic.queue import Packet


def _packet(destination=2):
    return Packet(source=1, destination=destination)


@pytest.fixture
def mac():
    return DcfMac(1)


class TestStateMachine:
    def test_initial_idle(self, mac):
        assert mac.state is MacState.IDLE
        assert not mac.needs_backoff_draw()

    def test_enqueue_triggers_draw_need(self, mac):
        mac.enqueue(_packet())
        assert mac.needs_backoff_draw()

    def test_draw_moves_to_contending(self, mac):
        mac.enqueue(_packet())
        mac.draw_backoff()
        assert mac.state is MacState.CONTENDING
        assert not mac.needs_backoff_draw()

    def test_begin_transmission(self, mac):
        mac.enqueue(_packet())
        mac.draw_backoff()
        mac.begin_transmission()
        assert mac.state is MacState.TRANSMITTING

    def test_success_pops_packet_resets_attempt(self, mac):
        mac.enqueue(_packet())
        mac.draw_backoff()
        mac.begin_transmission()
        mac.complete_transmission(True)
        assert mac.state is MacState.IDLE
        assert mac.attempt == 1
        assert mac.stats.successes == 1

    def test_failure_increments_attempt_keeps_packet(self, mac):
        mac.enqueue(_packet())
        mac.draw_backoff()
        mac.begin_transmission()
        mac.complete_transmission(False)
        assert mac.attempt == 2
        assert mac.has_traffic
        assert mac.stats.failures == 1

    def test_retry_limit_drops_packet(self, mac):
        mac.enqueue(_packet())
        for _ in range(mac.timing.retry_limit):
            mac.draw_backoff()
            mac.begin_transmission()
            mac.complete_transmission(False)
        assert not mac.has_traffic
        assert mac.stats.drops == 1
        assert mac.attempt == 1

    def test_draw_without_packet_rejected(self, mac):
        with pytest.raises(RuntimeError):
            mac.draw_backoff()

    def test_double_draw_rejected(self, mac):
        mac.enqueue(_packet())
        mac.draw_backoff()
        with pytest.raises(RuntimeError):
            mac.draw_backoff()

    def test_complete_without_transmit_rejected(self, mac):
        with pytest.raises(RuntimeError):
            mac.complete_transmission(True)


class TestPrsConsumption:
    def test_offsets_consumed_sequentially(self, mac):
        mac.enqueue(_packet())
        mac.enqueue(_packet())
        for expected_offset in (0, 1):
            mac.draw_backoff()
            assert mac.current_draw.offset == expected_offset
            mac.begin_transmission()
            mac.complete_transmission(True)

    def test_retransmission_consumes_new_offset(self, mac):
        mac.enqueue(_packet())
        mac.draw_backoff()
        mac.begin_transmission()
        mac.complete_transmission(False)
        mac.draw_backoff()
        assert mac.current_draw.offset == 1
        assert mac.current_draw.attempt == 2

    def test_honest_draw_matches_prs(self, mac):
        mac.enqueue(_packet())
        actual = mac.draw_backoff()
        assert actual == mac.prng.dictated_backoff(0, 1)
        assert mac.current_draw.dictated == actual

    def test_misbehaving_draw_shrinks(self):
        mac = DcfMac(1, policy=PercentageMisbehavior(50))
        mac.enqueue(_packet())
        mac.draw_backoff()
        draw = mac.current_draw
        assert draw.actual == round(draw.dictated / 2)


class TestRtsConstruction:
    def test_rts_announces_draw(self, mac):
        packet = _packet(destination=9)
        mac.enqueue(packet)
        mac.draw_backoff()
        rts = mac.build_rts()
        assert rts.sender == 1
        assert rts.receiver == 9
        assert rts.seq_off == 0
        assert rts.attempt == 1
        assert rts.digest == data_digest(packet.payload)

    def test_rts_tracks_attempt(self, mac):
        mac.enqueue(_packet())
        mac.draw_backoff()
        mac.begin_transmission()
        mac.complete_transmission(False)
        mac.draw_backoff()
        rts = mac.build_rts()
        assert rts.attempt == 2
        assert rts.seq_off == 1

    def test_rts_before_draw_rejected(self, mac):
        mac.enqueue(_packet())
        with pytest.raises(RuntimeError):
            mac.build_rts()

    def test_attempt_liar_always_announces_one(self):
        mac = DcfMac(1, announce_attempt_always_one=True)
        mac.enqueue(_packet())
        mac.draw_backoff()
        mac.begin_transmission()
        mac.complete_transmission(False)
        mac.draw_backoff()
        assert mac.build_rts().attempt == 1

    def test_offset_liar_reuses_offset(self):
        mac = DcfMac(1, announce_stale_offset=True)
        mac.enqueue(_packet())
        mac.enqueue(_packet())
        mac.draw_backoff()
        mac.begin_transmission()
        mac.complete_transmission(True)
        mac.draw_backoff()
        # Real offset is 1; the liar announces 0 again.
        assert mac.build_rts().seq_off == 0


class TestStats:
    def test_backoff_totals(self, mac):
        mac.enqueue(_packet())
        mac.enqueue(_packet())
        total = 0
        for _ in range(2):
            total += mac.draw_backoff()
            mac.begin_transmission()
            mac.complete_transmission(True)
        assert mac.stats.total_actual_backoff == total
        assert mac.stats.backoffs_drawn == 2
        assert mac.stats.attempts == 2
