"""Unit tests for the from-scratch Wilcoxon rank-sum test.

Cross-validated against scipy.stats (available in the environment) on
both the normal-approximation and exact paths.
"""

import numpy as np
import pytest
from scipy import stats as scipy_stats

from repro.core.ranksum import (
    EXACT_LIMIT,
    RankSumResult,
    _exact_cdf_table,
    rank_sum_test,
    tie_group_sizes,
    wilcoxon_ranks,
)


class TestRanks:
    def test_simple_ranks(self):
        assert wilcoxon_ranks([30, 10, 20]) == [3.0, 1.0, 2.0]

    def test_tie_average(self):
        assert wilcoxon_ranks([5, 5, 1]) == [2.5, 2.5, 1.0]

    def test_all_tied(self):
        assert wilcoxon_ranks([7, 7, 7, 7]) == [2.5] * 4

    def test_rank_sum_invariant(self):
        values = [3, 1, 4, 1, 5, 9, 2, 6]
        n = len(values)
        assert sum(wilcoxon_ranks(values)) == pytest.approx(n * (n + 1) / 2)

    def test_empty(self):
        assert wilcoxon_ranks([]) == []


class TestBasicProperties:
    def test_identical_populations_high_p(self):
        x = list(range(20))
        y = list(range(20))
        result = rank_sum_test(x, y, "two-sided")
        assert result.p_value > 0.5

    def test_shifted_population_detected(self):
        x = list(range(100, 130))
        y = list(range(0, 30))
        result = rank_sum_test(x, y, "less")
        assert result.p_value < 1e-6

    def test_wrong_direction_not_detected(self):
        x = list(range(0, 30))
        y = list(range(100, 130))
        assert rank_sum_test(x, y, "less").p_value > 0.99
        assert rank_sum_test(x, y, "greater").p_value < 1e-6

    def test_two_sided_catches_both_directions(self):
        x = list(range(0, 30))
        y = list(range(100, 130))
        assert rank_sum_test(x, y, "two-sided").p_value < 1e-6
        assert rank_sum_test(y, x, "two-sided").p_value < 1e-6

    def test_empty_sample_rejected(self):
        with pytest.raises(ValueError):
            rank_sum_test([], [1, 2])

    def test_bad_alternative_rejected(self):
        with pytest.raises(ValueError):
            rank_sum_test([1], [2], "sideways")

    def test_p_value_in_unit_interval(self):
        rng = np.random.default_rng(0)
        for _ in range(50):
            x = rng.normal(size=8).tolist()
            y = rng.normal(size=6).tolist()
            for alt in ("less", "greater", "two-sided"):
                assert 0.0 <= rank_sum_test(x, y, alt).p_value <= 1.0

    def test_statistic_is_y_rank_sum(self):
        x = [10, 20]
        y = [1, 2]
        result = rank_sum_test(x, y)
        assert result.statistic == 3.0  # y holds ranks 1 and 2
        assert result.u_statistic == 0.0

    def test_method_selection(self):
        small_x = list(range(0, 10))
        small_y = [v + 0.5 for v in range(10, 20)]
        assert rank_sum_test(small_x, small_y).method == "exact"
        big = list(range(40))
        big_y = [v + 0.5 for v in range(40)]
        assert rank_sum_test(big, big_y).method == "normal"

    def test_ties_force_normal_method(self):
        x = [1, 2, 3]
        y = [3, 4, 5]
        assert rank_sum_test(x, y).method == "normal"


class TestAgainstScipy:
    @pytest.mark.parametrize("seed", range(6))
    @pytest.mark.parametrize("alternative", ["less", "greater", "two-sided"])
    def test_large_sample_matches_mannwhitneyu(self, seed, alternative):
        rng = np.random.default_rng(seed)
        x = rng.normal(0, 1, size=40)
        y = rng.normal(0.3, 1, size=35)
        ours = rank_sum_test(x.tolist(), y.tolist(), alternative)
        theirs = scipy_stats.mannwhitneyu(
            y, x, alternative=alternative, method="asymptotic"
        )
        assert ours.p_value == pytest.approx(theirs.pvalue, rel=1e-3, abs=1e-6)

    @pytest.mark.parametrize("seed", range(6))
    @pytest.mark.parametrize("alternative", ["less", "greater", "two-sided"])
    def test_exact_matches_mannwhitneyu_exact(self, seed, alternative):
        rng = np.random.default_rng(100 + seed)
        # Continuous draws: no ties, small samples -> exact path.
        x = rng.normal(0, 1, size=9)
        y = rng.normal(0.5, 1, size=8)
        ours = rank_sum_test(x.tolist(), y.tolist(), alternative)
        assert ours.method == "exact"
        theirs = scipy_stats.mannwhitneyu(
            y, x, alternative=alternative, method="exact"
        )
        assert ours.p_value == pytest.approx(theirs.pvalue, rel=1e-9)

    def test_u_statistic_matches_scipy(self):
        rng = np.random.default_rng(7)
        x = rng.normal(size=12)
        y = rng.normal(size=15)
        ours = rank_sum_test(x.tolist(), y.tolist())
        theirs = scipy_stats.mannwhitneyu(y, x, alternative="two-sided")
        assert ours.u_statistic == pytest.approx(theirs.statistic)


def _tie_sizes_reference(combined):
    """The original O(n^2) tie scan, kept verbatim as the oracle."""
    sizes = []
    for value in sorted(set(combined)):
        t = combined.count(value)
        if t > 1:
            sizes.append(t)
    return sizes


class TestTieSizes:
    """The one-pass tie scan must reproduce the O(n^2) original exactly."""

    @pytest.mark.parametrize("seed", range(10))
    def test_matches_quadratic_reference(self, seed):
        rng = np.random.default_rng(seed)
        # Coarse integer draws force heavy ties; occasional floats mix in.
        combined = rng.integers(0, 6, size=rng.integers(1, 60)).astype(
            float
        ).tolist()
        if seed % 2:
            combined += rng.uniform(0, 3, size=5).round(1).tolist()
        assert tie_group_sizes(sorted(combined)) == _tie_sizes_reference(
            combined
        )

    def test_edge_cases(self):
        assert tie_group_sizes([]) == []
        assert tie_group_sizes([1.0]) == []
        assert tie_group_sizes([1.0, 2.0, 3.0]) == []
        assert tie_group_sizes([2.0, 2.0, 2.0]) == [3]
        assert tie_group_sizes([1.0, 1.0, 2.0, 3.0, 3.0, 3.0]) == [2, 3]

    def test_order_is_ascending_by_value(self):
        # _normal_p sums tie_sizes in this order; it must stay ascending.
        combined = [5.0, 5.0, 5.0, 1.0, 1.0, 9.0, 9.0, 9.0, 9.0]
        assert tie_group_sizes(sorted(combined)) == [2, 3, 4]


def _exact_table_reference(n_total):
    """The original pure-python DP, run once per n_total with n_y=n_total.

    Row ``k`` of the 2-D table is exactly what the original
    ``_exact_cdf_table(k, n_total)`` returned: bounding the DP by a
    smaller n_y only skips rows above it, never changes rows below.
    """
    max_sum = n_total * (n_total + 1) // 2
    ways = [[0] * (max_sum + 1) for _ in range(n_total + 1)]
    ways[0][0] = 1
    for rank in range(1, n_total + 1):
        for k in range(min(rank, n_total), 0, -1):
            row, prev = ways[k], ways[k - 1]
            for s in range(max_sum, rank - 1, -1):
                if prev[s - rank]:
                    row[s] += prev[s - rank]
    return ways


class TestExactTableVectorized:
    """The numpy DP must equal the original table for every reachable
    (n_y, n_total) pair up to EXACT_LIMIT."""

    def test_all_pairs_up_to_exact_limit(self):
        for n_total in range(1, EXACT_LIMIT + 1):
            reference = _exact_table_reference(n_total)
            for n_y in range(1, n_total + 1):
                table = _exact_cdf_table(n_y, n_total)
                assert table == tuple(reference[n_y]), (n_y, n_total)
                assert all(isinstance(c, int) for c in table)

    def test_total_count_is_binomial(self):
        import math

        for n_y, n_total in ((3, 8), (12, 25), (25, 25)):
            assert sum(_exact_cdf_table(n_y, n_total)) == math.comb(
                n_total, n_y
            )


class TestFalseAlarmCalibration:
    def test_type_i_error_near_alpha(self):
        """Under H0 the rejection rate must track the significance level."""
        rng = np.random.default_rng(42)
        alpha = 0.05
        trials = 400
        rejections = 0
        for _ in range(trials):
            x = rng.uniform(0, 32, size=20).tolist()
            y = rng.uniform(0, 32, size=20).tolist()
            if rank_sum_test(x, y, "less").p_value < alpha:
                rejections += 1
        rate = rejections / trials
        assert rate < 2.5 * alpha
        assert rate > 0.0  # sanity: the test does reject sometimes
