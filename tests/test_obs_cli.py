"""End-to-end tests for the CLI observability surface.

Exercises ``--metrics`` / ``--json`` / ``--profile`` / ``--audit``
through :func:`repro.cli.main`, validating the emitted manifests and
the determinism guarantee (same seed, byte-identical metric snapshot).
"""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.obs import MANIFEST_REQUIRED_KEYS, RunManifest
from repro.obs.audit import AUDIT_FIELDS
from repro.obs.runtime import disable_metrics, reset_metrics


@pytest.fixture(autouse=True)
def _clean_runtime():
    disable_metrics()
    reset_metrics()
    yield
    disable_metrics()
    reset_metrics()


def _demo(tmp_path, *extra):
    out = tmp_path / "run.json"
    argv = ["demo", "--seconds", "2", "--metrics", "--json", str(out)]
    argv.extend(extra)
    assert main(argv) == 0
    return json.loads(out.read_text())


def test_demo_manifest_required_keys(tmp_path, capsys):
    manifest = _demo(tmp_path)
    for key in MANIFEST_REQUIRED_KEYS:
        assert key in manifest
    assert manifest["name"] == "demo"
    assert manifest["seed"] == 42
    assert manifest["config"]["pm"] == 60
    assert manifest["duration_s"] > 0
    assert manifest["metrics"]["counters"]["engine.slots"] > 0
    out = capsys.readouterr().out
    assert "metrics:" in out
    assert "engine.slots" in out


def test_demo_manifest_loads_as_run_manifest(tmp_path):
    _demo(tmp_path)
    manifest = RunManifest.load(tmp_path / "run.json")
    assert manifest.name == "demo"
    assert manifest.metrics is not None


def test_demo_audit_distinguishes_layers(tmp_path):
    """The acceptance bar: audit entries in the manifest separate
    deterministic catches from statistical rank-sum verdicts."""
    manifest = _demo(
        tmp_path, "--pm", "25", "--seed", "5", "--seconds", "6"
    )
    audit = manifest["audit"]
    assert audit, "cheating demo produced no audit records"
    for record in audit:
        assert set(record) == set(AUDIT_FIELDS)
    deterministic = [r for r in audit if r["deterministic"]]
    statistical = [r for r in audit if not r["deterministic"]]
    assert deterministic and statistical
    assert all(r["rule"] != "rank_sum" for r in deterministic)
    assert all(r["rule"] == "rank_sum" for r in statistical)
    assert all(r["p_value"] is not None for r in statistical)
    assert all(r["threshold"] is not None for r in statistical)


def test_demo_audit_jsonl_export(tmp_path):
    jsonl = tmp_path / "audit.jsonl"
    _demo(tmp_path, "--pm", "60", "--audit", str(jsonl))
    lines = jsonl.read_text().splitlines()
    assert lines
    for line in lines:
        assert set(json.loads(line)) == set(AUDIT_FIELDS)


def test_same_seed_runs_byte_identical_metrics(tmp_path):
    a = _demo(tmp_path)
    reset_metrics()
    b = _demo(tmp_path)
    assert json.dumps(a["metrics"], sort_keys=True) == json.dumps(
        b["metrics"], sort_keys=True
    )


def test_demo_profile_smoke(tmp_path, capsys):
    manifest = _demo(tmp_path, "--profile")
    profile = manifest["profile"]
    assert profile["wall_seconds"] > 0
    assert profile["slots"] > 0
    assert set(profile["phase_seconds"]) == {"events", "reconcile", "other"}
    assert "profile:" in capsys.readouterr().out


def test_fig3_manifest_has_results(tmp_path):
    out = tmp_path / "fig3.json"
    argv = [
        "fig3", "--loads", "0.02", "--runs", "1",
        "--metrics", "--json", str(out),
    ]
    assert main(argv) == 0
    manifest = json.loads(out.read_text())
    points = manifest["results"]["points"]
    assert points
    assert "rho" in points[0]
    assert manifest["config"]["loads"] == [0.02]
    assert manifest["metrics"]["counters"]["engine.slots"] > 0


def test_metrics_disabled_leaves_no_listener(capsys):
    assert main(["demo", "--seconds", "1"]) == 0
    out = capsys.readouterr().out
    assert "metrics:" not in out
