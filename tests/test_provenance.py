"""Tests for repro.obs.provenance: verdict evidence chains.

The acceptance bar from the issue: ``explain`` must reconstruct the full
observation -> window -> rank-sum chain for **every** accusation in the
16-detector scenario, asserted against the audit log.
"""

from __future__ import annotations

import itertools

import pytest

from repro.core.detector import DetectorConfig, reset_region_cache
from repro.core.observatory import SharedChannelObservatory
from repro.experiments.scenarios import MultiMonitorGridScenario
from repro.mac.misbehavior import PercentageMisbehavior
from repro.obs.audit import DecisionAuditLog
from repro.obs.provenance import (
    PROVENANCE_FIELDS,
    ProvenanceLog,
    ProvenanceRecord,
    explain,
    render_explanation,
)
from repro.traffic import queue as traffic_queue

CONFIG = DetectorConfig(sample_size=25, known_n=5, known_k=5)


def _record(**overrides):
    base = dict(
        verdict_id="3-7-1000-rank_sum-0",
        slot=1000,
        monitor=3,
        tagged=7,
        rule="rank_sum",
        diagnosis="malicious",
        deterministic=False,
        detail="p=0.01 vs alpha=0.05",
        observation_ids=[0, 1],
        observation_slots=[900, 950],
        window_start=900,
        window_end=950,
        dictated=[0.5, 0.6],
        estimated=[0.2, 0.3],
        statistic=12.0,
        p_value=0.01,
        threshold=0.05,
        sample_size=2,
        rho=0.8,
        arma_alpha=0.995,
        quarantine_drops={"undecodable": 3},
        skipped_samples=4,
    )
    base.update(overrides)
    return ProvenanceRecord(**base)


class TestProvenanceRecord:
    def test_roundtrip(self):
        record = _record()
        assert ProvenanceRecord.from_dict(record.to_dict()) == record

    def test_to_dict_keys_match_schema(self):
        assert tuple(_record().to_dict()) == PROVENANCE_FIELDS

    def test_from_dict_rejects_unknown_keys(self):
        data = _record().to_dict()
        data["surprise"] = 1
        with pytest.raises(ValueError, match="surprise"):
            ProvenanceRecord.from_dict(data)


class TestProvenanceLog:
    def test_jsonl_roundtrip(self, tmp_path):
        log = ProvenanceLog([_record(), _record(verdict_id="x-1")])
        path = log.write_jsonl(tmp_path / "prov.jsonl")
        loaded = ProvenanceLog.read_jsonl(path)
        assert loaded.records == log.records

    def test_find_raises_on_unknown_id(self):
        with pytest.raises(KeyError, match="nope"):
            ProvenanceLog([_record()]).find("nope")

    def test_accusations_filter(self):
        log = ProvenanceLog(
            [_record(), _record(verdict_id="w", diagnosis="well_behaved")]
        )
        assert [r.verdict_id for r in log.accusations()] == [
            "3-7-1000-rank_sum-0"
        ]

    def test_explain_from_path(self, tmp_path):
        log = ProvenanceLog([_record()])
        path = log.write_jsonl(tmp_path / "prov.jsonl")
        chain = explain(path, "3-7-1000-rank_sum-0")
        assert chain["rank_sum"]["p_value"] == 0.01

    def test_explain_chain_structure(self):
        chain = ProvenanceLog([_record()]).explain("3-7-1000-rank_sum-0")
        assert chain["window"] == {"start": 900, "end": 950, "size": 2}
        assert chain["observations"] == [
            {"id": 0, "slot": 900, "dictated": 0.5, "estimated": 0.2},
            {"id": 1, "slot": 950, "dictated": 0.6, "estimated": 0.3},
        ]
        assert chain["arma"] == {"rho": 0.8, "alpha": 0.995}
        assert chain["quarantine_drops"] == {"undecodable": 3}

    def test_render_explanation_narrative(self):
        text = render_explanation(
            ProvenanceLog([_record()]).explain("3-7-1000-rank_sum-0")
        )
        assert "monitor 3 observing node 7" in text
        assert "rank-sum" in text
        assert "2 observations" in text


def _run_16_detector_scenario():
    """The dense multi-monitor grid with two cheaters (the golden one)."""
    traffic_queue._packet_ids = itertools.count()
    reset_region_cache()
    scenario = MultiMonitorGridScenario(seed=7)
    taggeds = scenario.tagged_nodes()
    policies = {
        taggeds[0]: PercentageMisbehavior(60),
        taggeds[2]: PercentageMisbehavior(75),
    }
    sim, pairs = scenario.build(policies=policies)
    audit = DecisionAuditLog()
    provenance = ProvenanceLog()
    observatory = SharedChannelObservatory()
    sim.add_listener(observatory)
    detectors = [
        observatory.attach(
            monitor,
            tagged,
            config=CONFIG,
            separation=scenario.separation,
            audit=audit,
            provenance=provenance,
        )
        for monitor, tagged in pairs
    ]
    sim.run(4.0)
    return detectors, audit, provenance


class TestSixteenDetectorScenario:
    @pytest.fixture(scope="class")
    def run(self):
        return _run_16_detector_scenario()

    def test_every_verdict_has_a_provenance_record(self, run):
        detectors, audit, provenance = run
        assert len(detectors) == 16
        verdict_audit = [r for r in audit.records if r.rule != "quarantine"]
        assert len(provenance) == len(verdict_audit) > 0

    def test_verdict_ids_unique(self, run):
        _detectors, _audit, provenance = run
        ids = provenance.verdict_ids()
        assert len(ids) == len(set(ids))

    def test_provenance_links_to_audit_coordinates(self, run):
        _detectors, audit, provenance = run
        audit_keys = [
            (r.slot, r.monitor, r.tagged, r.rule, r.diagnosis)
            for r in audit.records
            if r.rule != "quarantine"
        ]
        prov_keys = [
            (r.slot, r.monitor, r.tagged, r.rule, r.diagnosis)
            for r in provenance
        ]
        # Publication order is identical: the detector appends the audit
        # record and the provenance record in the same _publish call.
        assert prov_keys == audit_keys

    def test_explain_reconstructs_every_accusation(self, run):
        detectors, _audit, provenance = run
        by_key = {(d.monitor_id, d.tagged_id): d for d in detectors}
        accusations = provenance.accusations()
        assert accusations, "scenario must produce accusations"
        for record in accusations:
            chain = provenance.explain(record.verdict_id)
            assert chain["diagnosis"] == "malicious"
            if record.rule != "rank_sum":
                assert chain["rank_sum"] is None
                continue
            # Full observation -> window -> rank-sum chain.
            detector = by_key[(record.monitor, record.tagged)]
            observations = chain["observations"]
            assert len(observations) == CONFIG.sample_size
            assert chain["window"]["start"] == observations[0]["slot"]
            assert chain["window"]["end"] == observations[-1]["slot"]
            assert chain["window"]["end"] <= record.slot
            slots = [o["slot"] for o in observations]
            assert slots == sorted(slots)
            for entry in observations:
                # Observation ids index the detector's accepted samples,
                # and the window slots are those samples' RTS slots.
                accepted = detector.observations[entry["id"]]
                assert accepted.slot == entry["slot"]
            assert chain["rank_sum"]["p_value"] == record.p_value
            assert chain["rank_sum"]["threshold"] == record.threshold
            assert len(chain["rank_sum"]["x"]) == CONFIG.sample_size

    def test_statistical_accusations_carry_rank_sum_inputs(self, run):
        _detectors, _audit, provenance = run
        rank_sum = [
            r for r in provenance.accusations() if r.rule == "rank_sum"
        ]
        assert rank_sum, "expected at least one statistical accusation"
        for record in rank_sum:
            assert record.statistic is not None
            assert record.p_value is not None
            assert record.p_value <= record.threshold
            assert len(record.dictated) == len(record.estimated)
            assert len(record.dictated) == CONFIG.sample_size
