"""Unit tests for the back-off scheduler (freeze/resume semantics)."""

import pytest

from repro.mac.backoff import BackoffScheduler, contention_window


class TestContentionWindowAlias:
    def test_matches_prng_rule(self):
        assert contention_window(1, 31, 1023) == 31
        assert contention_window(4, 31, 1023) == 255


class TestBackoffScheduler:
    def test_initial_state(self):
        s = BackoffScheduler()
        assert not s.active
        assert not s.counting

    def test_start_is_frozen(self):
        s = BackoffScheduler()
        s.start(10)
        assert s.active
        assert not s.counting
        assert s.remaining == 10
        assert s.initial == 10

    def test_resume_returns_completion(self):
        s = BackoffScheduler()
        s.start(10)
        assert s.resume(100) == 110
        assert s.counting

    def test_freeze_banks_elapsed_slots(self):
        s = BackoffScheduler()
        s.start(10)
        s.resume(100)
        s.freeze(104)
        assert s.remaining == 6
        assert not s.counting

    def test_freeze_resume_freeze(self):
        s = BackoffScheduler()
        s.start(10)
        s.resume(100)
        s.freeze(103)          # counted 3, 7 left
        s.resume(200)
        assert s.completion_slot == 207

    def test_freeze_idempotent(self):
        s = BackoffScheduler()
        s.start(10)
        s.resume(100)
        s.freeze(105)
        s.freeze(107)  # no-op: already frozen
        assert s.remaining == 5

    def test_freeze_inactive_is_noop(self):
        s = BackoffScheduler()
        s.freeze(50)  # must not raise
        assert not s.active

    def test_freeze_never_goes_negative(self):
        s = BackoffScheduler()
        s.start(5)
        s.resume(100)
        s.freeze(1000)
        assert s.remaining == 0

    def test_freeze_before_anchor_counts_nothing(self):
        s = BackoffScheduler()
        s.start(10)
        s.resume(100)  # anchor 100 (a DIFS after idle)
        s.freeze(98)   # busy arrived before the anchor
        assert s.remaining == 10

    def test_finish_clears(self):
        s = BackoffScheduler()
        s.start(10)
        s.resume(0)
        s.finish()
        assert not s.active
        assert s.initial is None

    def test_generation_bumps_on_transitions(self):
        s = BackoffScheduler()
        g0 = s.generation
        s.start(5)
        g1 = s.generation
        s.resume(10)
        g2 = s.generation
        s.freeze(12)
        g3 = s.generation
        assert g0 < g1 < g2 < g3

    def test_zero_backoff(self):
        s = BackoffScheduler()
        s.start(0)
        assert s.resume(100) == 100

    def test_negative_backoff_rejected(self):
        with pytest.raises(ValueError):
            BackoffScheduler().start(-1)

    def test_resume_without_start_rejected(self):
        with pytest.raises(RuntimeError):
            BackoffScheduler().resume(0)

    def test_completion_slot_requires_counting(self):
        s = BackoffScheduler()
        s.start(5)
        with pytest.raises(RuntimeError):
            _ = s.completion_slot

    def test_total_counted_slots_conserved(self):
        """Across any freeze/resume pattern, counted slots sum to the
        initial draw."""
        s = BackoffScheduler()
        s.start(20)
        counted = 0
        s.resume(0)
        s.freeze(7)
        counted += 7
        s.resume(50)
        s.freeze(55)
        counted += 5
        s.resume(100)
        counted += s.remaining
        assert counted == 20
