"""Unit tests for repro.util.units."""

import pytest

from repro.util.units import (
    Duration,
    microseconds_to_slots,
    seconds_to_slots,
    slots_to_microseconds,
    slots_to_seconds,
)


class TestMicrosecondsToSlots:
    def test_exact_multiple(self):
        assert microseconds_to_slots(40, 20) == 2

    def test_rounds_up(self):
        assert microseconds_to_slots(41, 20) == 3

    def test_zero(self):
        assert microseconds_to_slots(0) == 0

    def test_difs_is_three_slots(self):
        # 50 us DIFS over 20 us slots rounds up to 3.
        assert microseconds_to_slots(50) == 3

    def test_negative_duration_rejected(self):
        with pytest.raises(ValueError):
            microseconds_to_slots(-1)

    def test_non_positive_slot_time_rejected(self):
        with pytest.raises(ValueError):
            microseconds_to_slots(10, 0)


class TestRoundTrips:
    def test_slots_to_microseconds(self):
        assert slots_to_microseconds(3) == 60.0

    def test_slots_to_microseconds_rejects_negative(self):
        with pytest.raises(ValueError):
            slots_to_microseconds(-1)

    def test_seconds_round_trip(self):
        slots = seconds_to_slots(1.0)
        assert slots == 50_000
        assert slots_to_seconds(slots) == pytest.approx(1.0)


class TestDuration:
    def test_from_seconds(self):
        d = Duration.from_seconds(0.001)
        assert d.slots == 50
        assert d.microseconds == 1000.0

    def test_from_microseconds(self):
        assert Duration.from_microseconds(45).slots == 3

    def test_addition(self):
        assert (Duration(2) + Duration(3)).slots == 5

    def test_addition_mismatched_slot_times_rejected(self):
        with pytest.raises(ValueError):
            Duration(1, 20.0) + Duration(1, 10.0)

    def test_addition_mismatch_error_names_both_slot_times(self):
        # Regression: the error must name both slot times and point at
        # the explicit conversion path, so the mismatch is debuggable
        # instead of a bare "ValueError".
        with pytest.raises(ValueError, match=r"20\.0 us vs 10\.0 us"):
            Duration(1, 20.0) + Duration(1, 10.0)
        with pytest.raises(ValueError, match="from_microseconds"):
            Duration(3, 20.0) + Duration(2, 10.0)

    def test_int_conversion(self):
        assert int(Duration(7)) == 7

    def test_negative_slots_rejected(self):
        with pytest.raises(ValueError):
            Duration(-1)
