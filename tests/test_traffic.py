"""Unit tests for repro.traffic (generators and queue)."""

import pytest

from repro.traffic.generators import CbrTrafficGenerator, PoissonTrafficGenerator
from repro.traffic.queue import DropTailQueue, Packet
from repro.util.rng import RngStream


class TestPacket:
    def test_unique_uids(self):
        a = Packet(source=0, destination=1)
        b = Packet(source=0, destination=1)
        assert a.uid != b.uid

    def test_payload_unique_per_packet(self):
        a = Packet(source=0, destination=1)
        b = Packet(source=0, destination=1)
        assert a.payload != b.payload

    def test_default_size_matches_table1(self):
        assert Packet(source=0, destination=1).size_bytes == 512

    def test_invalid_size_rejected(self):
        with pytest.raises(ValueError):
            Packet(source=0, destination=1, size_bytes=0)


class TestDropTailQueue:
    def test_fifo_order(self):
        q = DropTailQueue(capacity=3)
        p1 = Packet(source=0, destination=1)
        p2 = Packet(source=0, destination=1)
        q.offer(p1)
        q.offer(p2)
        assert q.pop() is p1
        assert q.pop() is p2

    def test_capacity_drop(self):
        q = DropTailQueue(capacity=2)
        packets = [Packet(source=0, destination=1) for _ in range(3)]
        assert q.offer(packets[0])
        assert q.offer(packets[1])
        assert not q.offer(packets[2])
        assert q.drops == 1
        assert q.arrivals == 3

    def test_peek_does_not_remove(self):
        q = DropTailQueue()
        p = Packet(source=0, destination=1)
        q.offer(p)
        assert q.peek() is p
        assert len(q) == 1

    def test_peek_empty(self):
        assert DropTailQueue().peek() is None

    def test_pop_empty_raises(self):
        with pytest.raises(IndexError):
            DropTailQueue().pop()

    def test_departures_counted(self):
        q = DropTailQueue()
        q.offer(Packet(source=0, destination=1))
        q.pop()
        assert q.departures == 1

    def test_default_capacity_matches_table1(self):
        assert DropTailQueue().capacity == 50


class TestPoissonGenerator:
    def _gen(self, load=0.5, service=200, seed=1):
        return PoissonTrafficGenerator(
            load, service, rng=RngStream(seed, "arr")
        )

    def test_arrivals_strictly_increase(self):
        gen = self._gen()
        slot = -1
        for _ in range(200):
            nxt = gen.next_arrival_after(slot)
            assert nxt > slot
            slot = nxt

    def test_rate_approximately_correct(self):
        gen = self._gen(load=0.5, service=200)
        slot = -1
        arrivals = []
        for _ in range(3000):
            slot = gen.next_arrival_after(slot)
            arrivals.append(slot)
        mean_gap = (arrivals[-1] - arrivals[0]) / (len(arrivals) - 1)
        assert mean_gap == pytest.approx(400.0, rel=0.1)

    def test_end_slot_terminates(self):
        gen = PoissonTrafficGenerator(
            0.5, 100, rng=RngStream(2, "arr"), end_slot=1000
        )
        slot = -1
        while True:
            nxt = gen.next_arrival_after(slot)
            if nxt is None:
                break
            assert nxt <= 1000
            slot = nxt

    def test_invalid_load_rejected(self):
        with pytest.raises(ValueError):
            self._gen(load=0.0)


class TestCbrGenerator:
    def test_fixed_interval(self):
        gen = CbrTrafficGenerator(0.5, 100)  # interval = 200
        slots = []
        slot = -1
        for _ in range(5):
            slot = gen.next_arrival_after(slot)
            slots.append(slot)
        gaps = {b - a for a, b in zip(slots, slots[1:])}
        assert gaps == {200}

    def test_phase_offsets_streams(self):
        a = CbrTrafficGenerator(0.5, 100, phase=0)
        b = CbrTrafficGenerator(0.5, 100, phase=37)
        assert a.next_arrival_after(0) != b.next_arrival_after(0)

    def test_arrivals_strictly_increase(self):
        gen = CbrTrafficGenerator(1.0, 100, phase=13)
        slot = -1
        for _ in range(100):
            nxt = gen.next_arrival_after(slot)
            assert nxt > slot
            slot = nxt

    def test_end_slot(self):
        gen = CbrTrafficGenerator(0.5, 100, end_slot=500)
        slot = 450
        nxt = gen.next_arrival_after(slot)
        assert nxt is None or nxt <= 500

    def test_same_load_as_poisson(self):
        cbr = CbrTrafficGenerator(0.5, 200)
        assert cbr.interval == 400
