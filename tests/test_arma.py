"""Unit tests for the ARMA traffic-intensity estimator (paper eq. 6)."""

import pytest

from repro.core.arma import ArmaTrafficEstimator


class TestUpdate:
    def test_first_update_seeds_estimate(self):
        est = ArmaTrafficEstimator()
        est.update(0.4)
        assert est.estimate == pytest.approx(0.4)

    def test_recursion_matches_eq6(self):
        est = ArmaTrafficEstimator(alpha=0.9)
        est.update(0.5)
        est.update(1.0)
        assert est.estimate == pytest.approx(0.9 * 0.5 + 0.1 * 1.0)

    def test_converges_to_constant_input(self):
        est = ArmaTrafficEstimator(alpha=0.9)
        for _ in range(300):
            est.update(0.7)
        assert est.estimate == pytest.approx(0.7, abs=1e-6)

    def test_alpha_near_one_is_smooth(self):
        smooth = ArmaTrafficEstimator(alpha=0.995)
        jumpy = ArmaTrafficEstimator(alpha=0.5)
        for est in (smooth, jumpy):
            est.update(0.2)
            est.update(0.9)
        assert abs(smooth.estimate - 0.2) < abs(jumpy.estimate - 0.2)

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            ArmaTrafficEstimator().update(1.2)

    def test_default_alpha_matches_paper(self):
        assert ArmaTrafficEstimator().alpha == 0.995


class TestIngest:
    def test_before_data_estimate_zero(self):
        assert ArmaTrafficEstimator().estimate == 0.0

    def test_partial_interval_uses_raw_mean(self):
        est = ArmaTrafficEstimator(sample_interval_slots=1000)
        est.ingest(50, 100)
        assert not est.warmed_up
        assert est.estimate == pytest.approx(0.5)

    def test_full_interval_triggers_update(self):
        est = ArmaTrafficEstimator(sample_interval_slots=100)
        est.ingest(30, 100)
        assert est.warmed_up
        assert est.intervals_consumed == 1
        assert est.estimate == pytest.approx(0.3)

    def test_many_chunks_track_mean(self):
        est = ArmaTrafficEstimator(alpha=0.9, sample_interval_slots=100)
        for _ in range(500):
            est.ingest(60, 100)
        assert est.estimate == pytest.approx(0.6, abs=1e-3)

    def test_chunk_boundaries_irrelevant_for_constant_traffic(self):
        a = ArmaTrafficEstimator(alpha=0.95, sample_interval_slots=100)
        b = ArmaTrafficEstimator(alpha=0.95, sample_interval_slots=100)
        for _ in range(100):
            a.ingest(40, 100)
        for _ in range(200):
            b.ingest(20, 50)
        assert a.estimate == pytest.approx(b.estimate, abs=1e-6)

    def test_invalid_counts_rejected(self):
        est = ArmaTrafficEstimator()
        with pytest.raises(ValueError):
            est.ingest(10, 5)
        with pytest.raises(ValueError):
            est.ingest(-1, 5)

    def test_estimate_bounded(self):
        est = ArmaTrafficEstimator(sample_interval_slots=10)
        est.ingest(10, 10)
        est.ingest(0, 10)
        assert 0.0 <= est.estimate <= 1.0
