"""Tests for the packet-level trace recorder."""

import pytest

from repro.phy.medium import Transmission
from repro.sim.trace import TraceRecord, TraceRecorder


def _tx(sender=0, receiver=1, start=0, end=10, frame=None):
    return Transmission(
        sender=sender, receiver=receiver, start_slot=start, end_slot=end,
        frame=frame,
    )


class TestTraceRecord:
    def test_render_success(self):
        rec = TraceRecord(slot=50, kind="success", sender=1, receiver=2)
        line = rec.render()
        assert line.startswith("r 0.001000")
        assert "_1_ -> _2_" in line

    def test_render_kinds(self):
        assert TraceRecord(0, "start").render().startswith("s ")
        assert TraceRecord(0, "failure").render().startswith("d ")
        assert TraceRecord(0, "epoch").render().startswith("M ")


class TestTraceRecorder:
    def test_records_lifecycle(self):
        recorder = TraceRecorder()
        tx = _tx()
        recorder.on_transmission_start(0, tx, None)
        recorder.on_transmission_end(10, tx, True, None)
        assert [r.kind for r in recorder.records] == ["start", "success"]

    def test_failure_recorded(self):
        recorder = TraceRecorder()
        recorder.on_transmission_end(10, _tx(), False, None)
        assert recorder.records[0].kind == "failure"
        assert "dur=10" in recorder.records[0].detail

    def test_rts_detail(self):
        from repro.mac.digest import data_digest
        from repro.mac.frames import RtsFrame

        rts = RtsFrame(
            sender=0, receiver=1, seq_off=7, attempt=2,
            digest=data_digest(b"x"),
        )
        recorder = TraceRecorder()
        recorder.on_transmission_start(0, _tx(frame=rts), None)
        assert "seq=7" in recorder.records[0].detail
        assert "attempt=2" in recorder.records[0].detail

    def test_sender_filter(self):
        recorder = TraceRecorder(senders={5})
        recorder.on_transmission_start(0, _tx(sender=0), None)
        recorder.on_transmission_start(0, _tx(sender=5), None)
        assert len(recorder.records) == 1
        assert recorder.records[0].sender == 5

    def test_memory_bound(self):
        recorder = TraceRecorder(max_records=2)
        for i in range(5):
            recorder.on_transmission_start(i, _tx(), None)
        assert len(recorder.records) == 2
        assert recorder.dropped == 3

    def test_epoch_recorded(self):
        recorder = TraceRecorder()
        recorder.on_positions_updated(100, {0: (0, 0)}, None)
        assert recorder.records[0].kind == "epoch"
        assert "nodes=1" in recorder.records[0].detail

    def test_write(self, tmp_path):
        recorder = TraceRecorder()
        recorder.on_transmission_start(0, _tx(), None)
        path = tmp_path / "trace.tr"
        recorder.write(path)
        assert path.read_text().startswith("s 0.000000")

    def test_events_of(self):
        recorder = TraceRecorder()
        recorder.on_transmission_start(0, _tx(sender=3), None)
        recorder.on_transmission_start(0, _tx(sender=4), None)
        assert len(recorder.events_of(3)) == 1

    def test_end_to_end_trace(self):
        """Tracing a real simulation produces a consistent event stream:
        every start has a matching outcome and slots are monotone."""
        from repro.sim.network import Flow, Simulation
        from repro.topology.placement import grid_positions

        sim = Simulation(
            grid_positions(rows=1, cols=2),
            flows=[Flow(source=0, destination=1, load=0.3)],
        )
        recorder = TraceRecorder()
        sim.add_listener(recorder)
        sim.run(0.5)
        starts = sum(1 for r in recorder.records if r.kind == "start")
        outcomes = sum(
            1 for r in recorder.records if r.kind in ("success", "failure")
        )
        assert starts == outcomes > 0
        slots = [r.slot for r in recorder.records]
        assert slots == sorted(slots)
