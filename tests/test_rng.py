"""Unit tests for repro.util.rng."""

import pytest

from repro.util.rng import RngStream, derive_seed, spawn_streams


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(1, "a") == derive_seed(1, "a")

    def test_distinct_names_distinct_seeds(self):
        assert derive_seed(1, "a") != derive_seed(1, "b")

    def test_distinct_roots_distinct_seeds(self):
        assert derive_seed(1, "a") != derive_seed(2, "a")

    def test_path_components_matter(self):
        assert derive_seed(1, "a", "b") != derive_seed(1, "ab")


class TestRngStream:
    def test_reproducible(self):
        a = RngStream(42, "traffic")
        b = RngStream(42, "traffic")
        assert [a.uniform() for _ in range(5)] == [b.uniform() for _ in range(5)]

    def test_named_streams_independent(self):
        a = RngStream(42, "x")
        b = RngStream(42, "y")
        assert [a.uniform() for _ in range(5)] != [b.uniform() for _ in range(5)]

    def test_integers_in_range(self):
        s = RngStream(1, "ints")
        values = [s.integers(0, 10) for _ in range(200)]
        assert all(0 <= v < 10 for v in values)
        assert len(set(values)) > 5

    def test_exponential_positive(self):
        s = RngStream(1, "exp")
        assert all(s.exponential(10.0) > 0 for _ in range(100))

    def test_exponential_rejects_bad_mean(self):
        with pytest.raises(ValueError):
            RngStream(1).exponential(0)

    def test_choice(self):
        s = RngStream(3, "choice")
        seq = ["a", "b", "c"]
        assert all(s.choice(seq) in seq for _ in range(20))

    def test_choice_empty_rejected(self):
        with pytest.raises(ValueError):
            RngStream(1).choice([])

    def test_random_point_in_bounds(self):
        s = RngStream(9, "pt")
        for _ in range(50):
            x, y = s.random_point(100.0, 200.0)
            assert 0 <= x <= 100 and 0 <= y <= 200

    def test_exponential_mean_approximately_correct(self):
        s = RngStream(5, "mean")
        n = 4000
        mean = sum(s.exponential(50.0) for _ in range(n)) / n
        assert mean == pytest.approx(50.0, rel=0.1)


def test_spawn_streams():
    streams = spawn_streams(7, "a", "b")
    assert set(streams) == {"a", "b"}
    assert streams["a"].seed != streams["b"].seed
