"""Tests for the repo-native static analysis pass (repro.checks.lint).

Every rule gets a positive fixture (violating source that must be
flagged) and a negative fixture (compliant source that must pass).
Paths are synthetic: the linter scopes rules by path, so a fixture
"located" at repro/core/x.py exercises the core-package rules without
touching the real tree.
"""

from __future__ import annotations

import subprocess
import sys
import textwrap
from pathlib import Path

import pytest

from repro.checks import lint_paths, lint_source
from repro.checks.lint import RULES, WALL_CLOCK_ALLOWLIST, iter_python_files

SRC = str(Path(__file__).resolve().parent.parent / "src")


def codes(source, path="repro/core/fixture.py", select=None):
    src = textwrap.dedent(source)
    return [f.code for f in lint_source(src, path, select=select)]


# -- RPR001: stdlib random ---------------------------------------------------


def test_import_random_flagged():
    assert "RPR001" in codes("import random\n")


def test_from_random_import_flagged():
    assert "RPR001" in codes("from random import randint\n")


def test_import_random_allowed_in_rng_module():
    assert codes("import random\n", path="repro/util/rng.py") == []


def test_unrelated_import_clean():
    assert codes("import heapq\nimport itertools\n") == []


# -- RPR002: unseeded numpy randomness ---------------------------------------


def test_np_random_attribute_flagged():
    found = codes(
        """
        import numpy as np

        def draw() -> float:
            return np.random.default_rng().uniform()
        """
    )
    assert "RPR002" in found


def test_numpy_random_import_flagged():
    assert "RPR002" in codes("from numpy.random import default_rng\n")


def test_numpy_random_allowed_in_rng_module():
    src = "import numpy as np\nx = np.random.PCG64(7)\n"
    assert codes(src, path="repro/util/rng.py") == []


def test_seeded_stream_usage_clean():
    found = codes(
        """
        from repro.util.rng import RngStream

        def draw(stream: RngStream) -> float:
            return stream.uniform()
        """
    )
    assert found == []


# -- RPR003: wall-clock time -------------------------------------------------


@pytest.mark.parametrize(
    "call",
    ["time.time()", "time.monotonic()", "time.perf_counter()"],
)
def test_wall_clock_calls_flagged(call):
    assert "RPR003" in codes(f"import time\nt = {call}\n")


def test_datetime_now_flagged():
    assert "RPR003" in codes("import datetime\nd = datetime.datetime.now()\n")


def test_time_module_for_sleep_clean():
    # Only the wall-clock readers are banned, not the module itself.
    assert codes("import time\ntime.sleep(0.1)\n") == []


# -- RPR101: float literals in slot arithmetic -------------------------------


def test_float_added_to_slot_flagged():
    found = codes(
        """
        def bump(slot: int) -> int:
            return slot + 1.0
        """
    )
    assert "RPR101" in found


def test_float_augmented_assign_flagged():
    found = codes(
        """
        def bump(end_slot: int) -> int:
            end_slot += 0.5
            return end_slot
        """
    )
    assert "RPR101" in found


def test_int_slot_arithmetic_clean():
    found = codes(
        """
        def bump(slot: int, difs_slots: int) -> int:
            return slot + difs_slots + 1
        """
    )
    assert found == []


def test_slot_time_us_is_not_slotlike():
    # slot_time_us is a duration in microseconds — floats are fine.
    found = codes(
        """
        def scale(slot_time_us: float) -> float:
            return slot_time_us + 0.5
        """
    )
    assert found == []


def test_unit_conversion_multiply_clean():
    # Mult/Div convert between units; only additive slot math is integer.
    found = codes(
        """
        def to_seconds(slot: int) -> float:
            return slot * 20.0 / 1e6
        """
    )
    assert found == []


# -- RPR102: float equality on slot timestamps -------------------------------


def test_float_eq_slot_flagged():
    found = codes(
        """
        def check(start_slot: int) -> bool:
            return start_slot == 5.0
        """
    )
    assert "RPR102" in found


def test_float_neq_slot_flagged():
    found = codes(
        """
        def check(slot: int) -> bool:
            return 3.0 != slot
        """
    )
    assert "RPR102" in found


def test_int_eq_slot_clean():
    found = codes(
        """
        def check(slot: int) -> bool:
            return slot == 5
        """
    )
    assert found == []


# -- RPR201: mutable default arguments ---------------------------------------


def test_mutable_list_default_flagged():
    found = codes(
        """
        def collect(items: list = []) -> list:
            return items
        """
    )
    assert "RPR201" in found


def test_mutable_call_default_flagged():
    found = codes(
        """
        def collect(items: dict = dict()) -> dict:
            return items
        """
    )
    assert "RPR201" in found


def test_none_default_clean():
    found = codes(
        """
        from typing import Optional


        def collect(items: Optional[list] = None) -> list:
            return items or []
        """
    )
    assert found == []


# -- RPR202: bare except -----------------------------------------------------


def test_bare_except_flagged():
    found = codes(
        """
        def guarded() -> int:
            try:
                return 1
            except:
                return 0
        """
    )
    assert "RPR202" in found


def test_typed_except_clean():
    found = codes(
        """
        def guarded() -> int:
            try:
                return 1
            except ValueError:
                return 0
        """
    )
    assert found == []


# -- RPR301: missing annotations on public functions -------------------------


def test_unannotated_public_function_flagged():
    assert "RPR301" in codes("def area(radius):\n    return radius\n")


def test_missing_return_annotation_flagged():
    assert "RPR301" in codes("def area(radius: float):\n    return radius\n")


def test_annotated_public_function_clean():
    src = "def area(radius: float) -> float:\n    return radius\n"
    assert codes(src) == []


def test_private_function_exempt():
    assert codes("def _helper(x):\n    return x\n") == []


def test_self_and_cls_exempt():
    src = textwrap.dedent(
        """
        class Thing:
            def area(self) -> float:
                return 1.0

            @classmethod
            def build(cls) -> "Thing":
                return cls()
        """
    )
    assert codes(src) == []


def test_annotation_rule_scoped_to_simulation_packages():
    src = "def helper(x):\n    return x\n"
    assert "RPR301" in codes(src, path="repro/mac/helper.py")
    assert "RPR301" in codes(src, path="repro/sim/helper.py")
    assert "RPR301" in codes(src, path="repro/routing/helper.py")
    assert "RPR301" in codes(src, path="repro/experiments/helper.py")
    assert codes(src, path="repro/analysis/helper.py") == []
    assert codes(src, path="repro/cli.py") == []


# -- machinery ---------------------------------------------------------------


def test_syntax_error_reported_not_raised():
    found = lint_source("def broken(:\n", "repro/core/broken.py")
    assert [f.code for f in found] == ["RPR000"]


def test_select_filters_codes():
    src = "import random\n\n\ndef f(x):\n    return x\n"
    assert codes(src, select=["RPR001"]) == ["RPR001"]


def test_finding_render_format():
    (finding,) = lint_source("import random\n", "repro/core/f.py")
    rendered = finding.render()
    assert rendered.startswith("repro/core/f.py:1:")
    assert "RPR001" in rendered


def test_rule_catalogue_is_documented():
    assert len(RULES) >= 8
    assert len({rule.code for rule in RULES}) == len(RULES)
    for rule in RULES:
        assert rule.summary


def test_iter_python_files_skips_caches(tmp_path):
    (tmp_path / "keep.py").write_text("x = 1\n")
    cache = tmp_path / "__pycache__"
    cache.mkdir()
    (cache / "skip.py").write_text("x = 1\n")
    egg = tmp_path / "pkg.egg-info"
    egg.mkdir()
    (egg / "skip.py").write_text("x = 1\n")
    names = [path.name for path in iter_python_files([str(tmp_path)])]
    assert names == ["keep.py"]


def test_repo_source_tree_is_clean():
    assert lint_paths([SRC]) == []


def test_cli_exit_codes(tmp_path):
    bad = tmp_path / "bad.py"
    bad.write_text("import random\n")
    clean = tmp_path / "clean.py"
    clean.write_text("x = 1\n")
    env_cmd = [sys.executable, "-m", "repro.checks"]
    ok = subprocess.run(
        env_cmd + [str(clean)],
        capture_output=True,
        text=True,
        env={"PYTHONPATH": SRC, "PATH": "/usr/bin:/bin"},
    )
    assert ok.returncode == 0
    fail = subprocess.run(
        env_cmd + [str(bad)],
        capture_output=True,
        text=True,
        env={"PYTHONPATH": SRC, "PATH": "/usr/bin:/bin"},
    )
    assert fail.returncode == 1
    assert "RPR001" in fail.stdout


def test_cli_rejects_unknown_select_code(tmp_path):
    target = tmp_path / "clean.py"
    target.write_text("x = 1\n")
    result = subprocess.run(
        [sys.executable, "-m", "repro.checks", str(target), "--select", "NOPE"],
        capture_output=True,
        text=True,
        env={"PYTHONPATH": SRC, "PATH": "/usr/bin:/bin"},
    )
    assert result.returncode == 2
    assert "unknown rule code" in result.stderr


def test_cli_rejects_missing_path(tmp_path):
    result = subprocess.run(
        [sys.executable, "-m", "repro.checks", str(tmp_path / "absent.py")],
        capture_output=True,
        text=True,
        env={"PYTHONPATH": SRC, "PATH": "/usr/bin:/bin"},
    )
    assert result.returncode == 2
    assert "no such file or directory" in result.stderr


# -- RPR003 allowlist (repro.obs.profile) ------------------------------------


def test_wall_clock_allowlist_is_exactly_the_profiler():
    assert WALL_CLOCK_ALLOWLIST == ("obs/profile.py",)


def test_profile_module_is_clock_exempt():
    src = "import time\nt = time.perf_counter()\n"
    assert codes(src, path="repro/obs/profile.py") == []
    assert "RPR003" in codes(src, path="repro/obs/listener.py")


def test_time_import_flagged_outside_allowlist():
    src = "from time import perf_counter\n"
    assert "RPR003" in codes(src, path="repro/obs/listener.py")
    assert codes(src, path="repro/obs/profile.py") == []


def test_rng_module_is_not_clock_exempt():
    # util/rng.py is exempt from the RNG rules but NOT from RPR003.
    src = "import time\nt = time.time()\n"
    assert "RPR003" in codes(src, path="repro/util/rng.py")


def test_wall_clock_allowlist_matches_the_tree():
    """The allowlist is exact: lint every real source file under a
    surrogate non-exempt path; the files that then offend RPR003 must
    be precisely the allowlisted ones (so the profiler truly reads the
    clock, and nothing else in src/ does)."""
    offenders = set()
    for path in iter_python_files([SRC]):
        source = path.read_text(encoding="utf-8")
        found = lint_source(
            source, "unexempt/surrogate.py", select=["RPR003"]
        )
        if found:
            rel = path.relative_to(Path(SRC) / "repro").as_posix()
            offenders.add(rel)
    assert offenders == set(WALL_CLOCK_ALLOWLIST)


def test_annotation_rule_covers_obs():
    src = "def helper(x):\n    return x\n"
    assert "RPR301" in codes(src, path="repro/obs/helper.py")


# -- the shared observation plane stays inside the lint scope ------------------


def test_annotation_rule_covers_observatory_module():
    src = "def helper(x):\n    return x\n"
    assert "RPR301" in codes(src, path="repro/core/observatory.py")


def test_observatory_module_is_lint_clean():
    """The real observatory source passes every rule under its real path
    (it lives in repro/core, the strictest scope)."""
    path = Path(SRC) / "repro" / "core" / "observatory.py"
    source = path.read_text(encoding="utf-8")
    assert lint_source(source, "repro/core/observatory.py") == []


# -- RPR401: module-level caches must register a reset hook -------------------


def test_unregistered_module_cache_flagged():
    assert "RPR401" in codes("_model_cache = {}\n")


def test_annotated_module_cache_flagged():
    assert "RPR401" in codes("_result_cache: dict = {}\n")


def test_registered_module_cache_passes():
    src = """\
    from repro.util.caches import register_cache_reset

    _model_cache = {}

    @register_cache_reset
    def reset_model_cache():
        _model_cache.clear()
    """
    assert "RPR401" not in codes(src)


def test_register_reference_via_attribute_passes():
    src = """\
    import repro.util.caches

    _model_cache = {}
    repro.util.caches.register_cache_reset(_model_cache.clear)
    """
    assert "RPR401" not in codes(src)


def test_cache_registry_module_exempt_from_rpr401():
    src = "_hooks_cache = []\n"
    assert codes(src, path="repro/util/caches.py", select=["RPR401"]) == []


def test_all_caps_cache_constant_not_flagged():
    # ALL_CAPS names are constants by convention, not mutable caches.
    assert "RPR401" not in codes("CACHE_DIR_ENV = 'X'\n")


def test_function_local_cache_not_flagged():
    src = """\
    def lookup():
        local_cache = {}
        return local_cache
    """
    assert "RPR401" not in codes(src)


def test_every_source_cache_has_a_registered_reset():
    """RPR401 over the real tree: every module-level cache in src/
    registers a reset hook (the shared-state footgun stays fixed)."""
    assert lint_paths([SRC], select=["RPR401"]) == []
