"""Property-based fuzzing of the modified-RTS wire codec.

Two contracts, established by seeded random sweeps plus exhaustive
boundary coverage:

* **round-trip** — every encodable frame decodes back to the same
  on-air fields (the 13-bit wrapped ``seq_off_field``, the 3-bit
  attempt, the 32-bit-masked addresses, the full digest);
* **total decoding** — ``decode_rts`` raises
  :class:`~repro.mac.frames.FrameDecodeError` (a ``ValueError``) and
  *nothing else* on arbitrary corrupted, truncated, extended or random
  input.  The fault layer (``repro.faults``) and the monitors rely on
  that: an undecodable announcement is quarantined, never an uncaught
  exception inside the observation plane.

Draws come from seeded :class:`~repro.util.rng.RngStream` instances, so
failures reproduce bit-for-bit.
"""

from __future__ import annotations

import pytest

from repro.mac.frames import (
    ATTEMPT_BITS,
    MAX_ATTEMPT_FIELD,
    RTS_WIRE_BYTES,
    SEQ_OFF_MODULUS,
    FrameDecodeError,
    RtsFrame,
    decode_rts,
    encode_rts,
)
from repro.util.rng import RngStream

FUZZ_ROUNDS = 300

#: Boundary values for each field (plus random fill between them).
SEQ_OFF_EDGES = (0, 1, SEQ_OFF_MODULUS - 1, SEQ_OFF_MODULUS, SEQ_OFF_MODULUS + 1,
                 5 * SEQ_OFF_MODULUS + 7, 2**31)
ATTEMPT_EDGES = (1, 2, MAX_ATTEMPT_FIELD - 1, MAX_ATTEMPT_FIELD)
ADDRESS_EDGES = (0, 1, 0xFFFF_FFFF, 0x1_0000_0000, 2**40 + 3)
DIGEST_EDGES = (b"\x00" * 16, b"\xff" * 16, bytes(range(16)))


def _random_frame(rng):
    return RtsFrame(
        sender=int(rng.integers(0, 2**40)),
        receiver=int(rng.integers(0, 2**40)),
        seq_off=int(rng.integers(0, 4 * SEQ_OFF_MODULUS)),
        attempt=int(rng.integers(1, MAX_ATTEMPT_FIELD + 1)),
        digest=bytes(int(rng.integers(0, 256)) for _ in range(16)),
    )


def _assert_round_trip(frame):
    wire = encode_rts(frame)
    assert len(wire) == RTS_WIRE_BYTES
    decoded = decode_rts(wire)
    assert decoded.seq_off == frame.seq_off_field
    assert decoded.seq_off_field == frame.seq_off_field
    assert decoded.attempt == frame.attempt
    assert decoded.sender == frame.sender & 0xFFFF_FFFF
    assert decoded.receiver == frame.receiver & 0xFFFF_FFFF
    assert decoded.digest == frame.digest
    # Canonical form: re-encoding the decode reproduces the wire image.
    assert encode_rts(decoded) == wire


def test_round_trip_boundary_grid():
    """Every combination of per-field boundary values survives."""
    for seq_off in SEQ_OFF_EDGES:
        for attempt in ATTEMPT_EDGES:
            for address in ADDRESS_EDGES:
                for digest in DIGEST_EDGES:
                    _assert_round_trip(
                        RtsFrame(
                            sender=address,
                            receiver=ADDRESS_EDGES[-1 - ADDRESS_EDGES.index(address)],
                            seq_off=seq_off,
                            attempt=attempt,
                            digest=digest,
                        )
                    )


def test_round_trip_random_frames():
    rng = RngStream(4242, "frames-fuzz-roundtrip")
    for _ in range(FUZZ_ROUNDS):
        _assert_round_trip(_random_frame(rng))


def test_single_byte_corruption_detected_or_decodes_cleanly():
    """Flipping any single byte is caught by the CRC.

    (A 32-bit CRC cannot be fooled by a single-byte change, so each
    corrupted image must raise — and must raise FrameDecodeError.)
    """
    rng = RngStream(4242, "frames-fuzz-flip")
    for _ in range(60):
        wire = bytearray(encode_rts(_random_frame(rng)))
        position = int(rng.integers(0, len(wire)))
        mask = int(rng.integers(1, 256))
        wire[position] ^= mask
        with pytest.raises(FrameDecodeError):
            decode_rts(bytes(wire))


def test_multi_byte_corruption_never_raises_uncaught():
    """Arbitrary k-byte damage either decodes (CRC fluke) or raises
    FrameDecodeError — never any other exception."""
    rng = RngStream(4242, "frames-fuzz-damage")
    for _ in range(FUZZ_ROUNDS):
        wire = bytearray(encode_rts(_random_frame(rng)))
        for _flip in range(int(rng.integers(1, 6))):
            wire[int(rng.integers(0, len(wire)))] ^= int(rng.integers(1, 256))
        try:
            frame = decode_rts(bytes(wire))
        except FrameDecodeError:
            continue
        assert isinstance(frame, RtsFrame)  # a legitimate CRC fluke


def test_every_truncation_length_raises():
    wire = encode_rts(
        RtsFrame(sender=3, receiver=9, seq_off=77, attempt=2, digest=b"z" * 16)
    )
    for length in range(len(wire)):
        with pytest.raises(FrameDecodeError):
            decode_rts(wire[:length])


def test_extended_wire_raises():
    wire = encode_rts(
        RtsFrame(sender=3, receiver=9, seq_off=77, attempt=2, digest=b"z" * 16)
    )
    with pytest.raises(FrameDecodeError):
        decode_rts(wire + b"\x00")


def test_random_garbage_raises_only_decode_error():
    rng = RngStream(4242, "frames-fuzz-garbage")
    for _ in range(FUZZ_ROUNDS):
        length = int(rng.integers(0, 2 * RTS_WIRE_BYTES))
        blob = bytes(int(rng.integers(0, 256)) for _ in range(length))
        with pytest.raises(FrameDecodeError):
            decode_rts(blob)


def test_reserved_attempt_zero_rejected():
    """Attempt 0 is unencodable (RtsFrame forbids it), and a forged wire
    image carrying it fails decoding with FrameDecodeError."""
    import struct
    import zlib

    packed = (5 << ATTEMPT_BITS) | 0  # attempt field = 0
    body = struct.pack(">HII16s", packed, 1, 2, b"d" * 16)
    wire = body + struct.pack(">I", zlib.crc32(body))
    with pytest.raises(FrameDecodeError):
        decode_rts(wire)


def test_decode_error_is_a_value_error():
    assert issubclass(FrameDecodeError, ValueError)
