"""Equivalence contract of the shared observation plane.

The :class:`SharedChannelObservatory` replaces one full engine listener
per detector with a single listener plus per-detector subscriptions; its
promise is that this is a pure re-plumbing — same-seed observations,
verdicts, audit logs and metrics snapshots stay byte-identical to the
per-detector-observer path.  These tests pin that promise on the
paper's scenarios (grid, random, mobile with monitor hand-off) and on
the dense multi-monitor grid where sharing actually kicks in, plus the
view-API compatibility and subscription lifecycle semantics.
"""

import hashlib
import itertools
import json

import pytest

from repro.core.detector import (
    BackoffMisbehaviorDetector,
    DetectorConfig,
    cached_region_model,
    reset_region_cache,
)
from repro.core.handoff import MonitorHandoff
from repro.core.observation import ChannelObserver, joint_state_counts
from repro.core.observatory import SharedChannelObservatory
from repro.experiments.runner import collect_detection_samples
from repro.experiments.scenarios import (
    GridScenario,
    MultiMonitorGridScenario,
    RandomScenario,
)
from repro.mac.misbehavior import PercentageMisbehavior
from repro.obs.audit import DecisionAuditLog
from repro.obs.registry import MetricsRegistry
from repro.phy.channel import Channel
from repro.phy.medium import Medium, Transmission
from repro.traffic import queue as traffic_queue

CONFIG = DetectorConfig(sample_size=25, known_n=5, known_k=5)


def _fresh_run_state():
    """Reset cross-run process state so same-seed runs are bytewise equal.

    Packet uids feed the RTS payload digests; the module-global counter
    keeps counting across runs in one process, so it must rewind for the
    second run to emit identical frames.
    """
    traffic_queue._packet_ids = itertools.count()
    reset_region_cache()


def _audit_sha(audit):
    digest = hashlib.sha256()
    for record in audit.records:
        digest.update(json.dumps(record.to_dict(), sort_keys=True).encode())
    return digest.hexdigest()


def _collect(scenario, pm, use_observatory, target_samples, max_duration_s):
    _fresh_run_state()
    audit = DecisionAuditLog()
    detector = collect_detection_samples(
        scenario,
        pm,
        detector_config=CONFIG,
        target_samples=target_samples,
        max_duration_s=max_duration_s,
        audit=audit,
        use_observatory=use_observatory,
    )
    return detector, audit


class TestSameSeedEquivalence:
    """Legacy per-detector listener vs observatory subscription."""

    def _assert_equivalent(self, make_scenario, pm, target, duration):
        legacy, audit_l = _collect(
            make_scenario(), pm, False, target, duration
        )
        shared, audit_s = _collect(
            make_scenario(), pm, True, target, duration
        )
        assert legacy.observation_count == shared.observation_count
        assert legacy.observations == shared.observations
        assert legacy.verdicts == shared.verdicts
        assert legacy.flagged_malicious == shared.flagged_malicious
        assert _audit_sha(audit_l) == _audit_sha(audit_s)
        assert len(audit_l.records) == len(audit_s.records) > 0
        return legacy, shared

    def test_grid(self):
        legacy, shared = self._assert_equivalent(
            lambda: GridScenario(seed=5), 60, 300, 60.0
        )
        assert legacy.observation_count >= 100
        assert legacy.observer.observed == shared.observer.observed

    def test_random_static(self):
        legacy, shared = self._assert_equivalent(
            lambda: RandomScenario(seed=5), 50, 200, 60.0
        )
        assert legacy.observer.observed == shared.observer.observed

    def test_mobile_handoff(self):
        legacy, shared = self._assert_equivalent(
            lambda: RandomScenario(mobile=True, seed=23), 70, 200, 120.0
        )
        assert isinstance(legacy, MonitorHandoff)
        assert isinstance(shared, MonitorHandoff)
        assert legacy.handoffs == shared.handoffs
        assert legacy.monitor_id == shared.monitor_id


class TestMultiDetectorEquivalence:
    """The dense-monitor regime: 16 detectors on 4 shared channels."""

    def _run(self, use_observatory):
        _fresh_run_state()
        scenario = MultiMonitorGridScenario(seed=7)
        taggeds = scenario.tagged_nodes()
        policies = {
            taggeds[0]: PercentageMisbehavior(60),
            taggeds[2]: PercentageMisbehavior(75),
        }
        sim, pairs = scenario.build(policies=policies)
        audit = DecisionAuditLog()
        metrics = MetricsRegistry()
        detectors = []
        observatory = None
        if use_observatory:
            observatory = SharedChannelObservatory()
            sim.add_listener(observatory)
            for monitor, tagged in pairs:
                detectors.append(observatory.attach(
                    monitor, tagged, config=CONFIG,
                    separation=scenario.separation,
                    audit=audit, metrics=metrics,
                ))
        else:
            for monitor, tagged in pairs:
                detector = BackoffMisbehaviorDetector(
                    monitor, tagged, config=CONFIG,
                    separation=scenario.separation,
                    audit=audit, metrics=metrics,
                )
                sim.add_listener(detector)
                detectors.append(detector)
        sim.run(5.0)
        return detectors, audit, metrics, observatory

    def test_16_detectors_byte_identical(self):
        legacy, audit_l, metrics_l, _ = self._run(False)
        shared, audit_s, metrics_s, observatory = self._run(True)
        assert len(legacy) == len(shared) == 16
        for det_l, det_s in zip(legacy, shared):
            assert det_l.observations == det_s.observations
            assert det_l.verdicts == det_s.verdicts
            assert det_l.observer.observed == det_s.observer.observed
        assert _audit_sha(audit_l) == _audit_sha(audit_s)
        assert len(audit_l.records) == len(audit_s.records) > 0
        assert metrics_l.snapshot() == metrics_s.snapshot()
        # The sharing actually happened: 16 subscriptions collapse onto
        # 4 monitor channels, each with one shared ARMA feed and one
        # shared competing-terminal estimator.
        assert len(observatory._channels) == 4
        for channel in observatory._channels.values():
            assert channel.subscribers == 4
            assert len(channel.arma_feeds) == 1
            assert len(channel.terminal_feeds) == 1
            assert len(channel.arma_feeds[0].detectors) == 4


class TestViewCompatibility:
    """The subscription answers every ChannelObserver query identically."""

    def _run_pair(self):
        _fresh_run_state()
        scenario = GridScenario(seed=9)
        _sim, sender, monitor = scenario.build()
        _fresh_run_state()
        sim, sender, monitor = scenario.build(
            policies={sender: PercentageMisbehavior(50)}
        )
        observer = ChannelObserver(monitor, sender)
        sim.add_listener(observer)
        observatory = SharedChannelObservatory()
        sim.add_listener(observatory)
        detector = observatory.attach(
            monitor, sender, config=CONFIG, separation=scenario.separation
        )
        sim.run(5.0)
        return observer, detector.observer

    def test_queries_match_channel_observer(self):
        observer, subscription = self._run_pair()
        end = observer.last_slot
        assert end > 0
        assert subscription.last_slot == end
        assert subscription.monitor_tx_slots == observer.monitor_tx_slots
        spans = [(0, end), (end // 4, end // 2), (end // 2, end), (0, 1)]
        for start, stop in spans:
            assert subscription.busy_slots_in(start, stop) == (
                observer.busy_slots_in(start, stop)
            )
            assert subscription.busy_intervals_in(start, stop) == (
                observer.busy_intervals_in(start, stop)
            )
            assert subscription.idle_busy_counts(start, stop) == (
                observer.idle_busy_counts(start, stop)
            )
            assert subscription.idle_stretches_in(start, stop) == (
                observer.idle_stretches_in(start, stop)
            )
            assert subscription.own_tx_slots_in(start, stop) == (
                observer.own_tx_slots_in(start, stop)
            )
            assert subscription.traffic_intensity(start, stop) == (
                observer.traffic_intensity(start, stop)
            )
        assert subscription.observed == observer.observed

    def test_joint_state_counts_interop(self):
        observer, subscription = self._run_pair()
        end = observer.last_slot
        mixed = joint_state_counts(subscription, observer, 0, end)
        pure = joint_state_counts(observer, observer, 0, end)
        assert mixed == pure
        assert sum(mixed.values()) == end


def _toy_plane():
    """A 3-node medium plus observatory for lifecycle tests."""
    medium = Medium(Channel())
    medium.update_positions({0: (0.0, 0.0), 1: (100.0, 0.0), 2: (200.0, 0.0)})
    observatory = SharedChannelObservatory()
    return medium, observatory


def _drive(medium, observatory, sender, start, end, receiver=1):
    tx = Transmission(
        sender=sender, receiver=receiver,
        start_slot=start, end_slot=end, kind="handshake",
    )
    tx_id = medium.start_transmission(tx)
    observatory.on_transmission_start(start, tx, medium)
    medium.end_transmission(tx_id)
    observatory.on_transmission_end(end, tx, False, medium)


class TestSubscriptionLifecycle:
    def test_subscribed_detector_rejects_listener_registration(self):
        _, observatory = _toy_plane()
        detector = observatory.attach(1, 0, config=CONFIG)
        with pytest.raises(RuntimeError):
            detector.on_transmission_start(0, None, None)
        with pytest.raises(RuntimeError):
            detector.on_transmission_end(0, None, False, None)

    def test_fresh_channel_starts_empty(self):
        medium, observatory = _toy_plane()
        observatory.attach(1, 0, config=CONFIG)
        _drive(medium, observatory, sender=0, start=10, end=20)
        shared = observatory._channels[1]
        assert shared.busy_slots_in(0, 100) == 10
        late = observatory.attach(1, 2, config=CONFIG, fresh_channel=True)
        # The private channel never saw the earlier interval...
        assert late.observer.busy_slots_in(0, 100) == 0
        # ...and the shared one is untouched by the new subscription.
        assert shared.subscribers == 1
        _drive(medium, observatory, sender=0, start=30, end=40)
        assert late.observer.busy_slots_in(0, 100) == 10
        assert shared.busy_slots_in(0, 100) == 20

    def test_retag_moves_demux(self):
        medium, observatory = _toy_plane()
        detector = observatory.attach(1, 0, config=CONFIG)
        subscription = detector.observer
        _drive(medium, observatory, sender=0, start=10, end=20)
        assert len(subscription.observed) == 1
        subscription.retag(2)
        assert subscription.observed == []
        _drive(medium, observatory, sender=0, start=30, end=40)
        assert subscription.observed == []
        _drive(medium, observatory, sender=2, start=50, end=60)
        assert len(subscription.observed) == 1

    def test_detach_freezes_state_and_releases_channel(self):
        medium, observatory = _toy_plane()
        first = observatory.attach(1, 0, config=CONFIG)
        second = observatory.attach(1, 2, config=CONFIG)
        assert observatory._channels[1].subscribers == 2
        _drive(medium, observatory, sender=0, start=10, end=20)
        observatory.detach(first)
        assert observatory._channels[1].subscribers == 1
        frozen = first.observer.busy_slots_in(0, 100)
        _drive(medium, observatory, sender=0, start=30, end=40)
        assert first.observer.busy_slots_in(0, 100) == frozen + 10  # shared view
        assert len(first.observer.observed) == 1  # demux frozen
        observatory.detach(second)
        assert 1 not in observatory._channels
        assert observatory._channel_list == []


class TestRegionModelCache:
    def test_cached_model_is_shared(self):
        reset_region_cache()
        first = cached_region_model()
        assert cached_region_model() is first
        reset_region_cache()
        again = cached_region_model()
        assert again is not first
        assert again.regions.uniform_invisible_fraction == (
            first.regions.uniform_invisible_fraction
        )

    def test_detectors_share_default_model(self):
        reset_region_cache()
        one = BackoffMisbehaviorDetector(1, 0, config=CONFIG)
        two = BackoffMisbehaviorDetector(3, 2, config=CONFIG)
        assert one.state_estimator.region_model is (
            two.state_estimator.region_model
        )
