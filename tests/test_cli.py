"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_table1_parses(self):
        args = build_parser().parse_args(["table1"])
        assert args.command == "table1"

    def test_fig5_options(self):
        args = build_parser().parse_args(
            ["fig5", "--loads", "0.6", "--pm", "25", "65", "--windows", "3"]
        )
        assert args.loads == [0.6]
        assert args.pm == [25, 65]
        assert args.windows == 3

    def test_demo_defaults(self):
        args = build_parser().parse_args(["demo"])
        assert args.pm == 60
        assert args.load == 0.6


class TestExecution:
    def test_table1_output(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "Table 1" in out
        assert "550m" in out

    def test_demo_honest(self, capsys):
        assert main(["demo", "--pm", "0", "--seconds", "4", "--seed", "5"]) == 0
        out = capsys.readouterr().out
        assert "never flagged" in out

    def test_demo_cheater(self, capsys):
        assert main(["demo", "--pm", "70", "--seconds", "6", "--seed", "5"]) == 0
        out = capsys.readouterr().out
        assert "flagged malicious" in out

    def test_fig3_tiny(self, capsys):
        assert main(["fig3", "--loads", "0.02", "--runs", "1"]) == 0
        out = capsys.readouterr().out
        assert "Figure 3" in out
        assert "rho" in out
