"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_table1_parses(self):
        args = build_parser().parse_args(["table1"])
        assert args.command == "table1"

    def test_fig5_options(self):
        args = build_parser().parse_args(
            ["fig5", "--loads", "0.6", "--pm", "25", "65", "--windows", "3"]
        )
        assert args.loads == [0.6]
        assert args.pm == [25, 65]
        assert args.windows == 3

    def test_demo_defaults(self):
        args = build_parser().parse_args(["demo"])
        assert args.pm == 60
        assert args.load == 0.6


class TestExecution:
    def test_table1_output(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "Table 1" in out
        assert "550m" in out

    def test_demo_honest(self, capsys):
        assert main(["demo", "--pm", "0", "--seconds", "4", "--seed", "5"]) == 0
        out = capsys.readouterr().out
        assert "never flagged" in out

    def test_demo_cheater(self, capsys):
        assert main(["demo", "--pm", "70", "--seconds", "6", "--seed", "5"]) == 0
        out = capsys.readouterr().out
        assert "flagged malicious" in out

    def test_fig3_tiny(self, capsys):
        assert main(["fig3", "--loads", "0.02", "--runs", "1"]) == 0
        out = capsys.readouterr().out
        assert "Figure 3" in out
        assert "rho" in out


class TestServeParser:
    def test_defaults(self):
        args = build_parser().parse_args(["serve"])
        assert args.command == "serve"
        assert args.flush_every == 64
        assert args.maintain_every == 4096
        assert args.queue_cap == 65536
        assert args.warmup == 100_000
        assert args.max_links is None
        assert args.links is None
        assert not args.no_discover

    def test_links_parse(self):
        args = build_parser().parse_args(
            ["serve", "--links", "7:77", "9:99"]
        )
        assert args.links == [(7, 77), (9, 99)]

    @pytest.mark.parametrize("bad", ["7", "7:77:8", "a:b", "7:"])
    def test_bad_link_rejected(self, bad):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["serve", "--links", bad])

    def test_sources_mutually_exclusive(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["serve", "--input", "a.jsonl", "--follow", "b.jsonl"]
            )


class TestServeExecution:
    @pytest.fixture
    def stream_path(self, tmp_path):
        from repro.serve.capture import synthetic_stream

        path = tmp_path / "stream.jsonl"
        path.write_text(
            "\n".join(synthetic_stream(3, 40)) + "\n", encoding="utf-8"
        )
        return path

    def test_replay_summary(self, stream_path, capsys):
        assert (
            main(["serve", "--input", str(stream_path), "--warmup", "0"]) == 0
        )
        out = capsys.readouterr().out
        assert "links: 3 tracked" in out
        assert "verdicts:" in out
        assert "queue drops: 0" in out

    def test_artifact_sinks(self, stream_path, tmp_path, capsys):
        audit = tmp_path / "audit.jsonl"
        provenance = tmp_path / "prov.jsonl"
        metrics = tmp_path / "metrics.prom"
        assert (
            main(
                [
                    "serve",
                    "--input",
                    str(stream_path),
                    "--warmup",
                    "0",
                    "--audit",
                    str(audit),
                    "--provenance",
                    str(provenance),
                    "--metrics-out",
                    str(metrics),
                ]
            )
            == 0
        )
        capsys.readouterr()
        for line in audit.read_text().splitlines():
            json.loads(line)
        for line in provenance.read_text().splitlines():
            json.loads(line)
        prom = metrics.read_text()
        assert "serve_lines" in prom
        assert "serve_events_end" in prom

    def test_explicit_links_without_discovery(self, stream_path, capsys):
        assert (
            main(
                [
                    "serve",
                    "--input",
                    str(stream_path),
                    "--warmup",
                    "0",
                    "--no-discover",
                    "--links",
                    "1000000:2000000",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "links: 1 tracked" in out

    def test_missing_input_fails(self, tmp_path):
        with pytest.raises(OSError):
            main(["serve", "--input", str(tmp_path / "absent.jsonl")])
