"""Unit tests for repro.phy.channel."""

import pytest

from repro.phy.channel import Channel
from repro.phy.propagation import LogNormalShadowing
from repro.util.rng import RngStream


class TestChannelRanges:
    def test_sensing_must_cover_transmission(self):
        with pytest.raises(ValueError):
            Channel(transmission_range=550, sensing_range=250)

    def test_decodable_within_250m(self):
        ch = Channel()
        assert ch.decodable(0, (0, 0), 1, (240, 0))
        assert not ch.decodable(0, (0, 0), 1, (251, 0))

    def test_sensed_within_550m(self):
        ch = Channel()
        assert ch.sensed(0, (0, 0), 1, (540, 0))
        assert not ch.sensed(0, (0, 0), 1, (551, 0))

    def test_decodable_implies_sensed(self):
        ch = Channel()
        for d in (0.0, 100.0, 249.0, 250.0):
            if ch.decodable(0, (0, 0), 1, (d, 0)):
                assert ch.sensed(0, (0, 0), 1, (d, 0))

    def test_link_state_fields(self):
        ch = Channel()
        state = ch.link_state(0, (0, 0), 1, (300, 0))
        assert state.distance == 300.0
        assert not state.decodable
        assert state.sensed


class TestChannelWithShadowing:
    def test_shadowing_perturbs_boundary_links(self):
        rng = RngStream(3, "shadow")
        ch = Channel(propagation=LogNormalShadowing(8.0, rng=rng))
        # At exactly the nominal boundary, some pairs decode and some
        # don't once shadowing is on.
        outcomes = {
            ch.decodable(i, (0, 0), i + 1, (250, 0)) for i in range(0, 100, 2)
        }
        assert outcomes == {True, False}

    def test_refresh_fading_changes_links(self):
        rng = RngStream(4, "shadow")
        ch = Channel(propagation=LogNormalShadowing(10.0, rng=rng))
        before = [ch.decodable(0, (0, 0), 1, (250, 0)) for _ in range(1)]
        results = set()
        for _ in range(50):
            ch.refresh_fading()
            results.add(ch.decodable(0, (0, 0), 1, (250, 0)))
        assert results == {True, False}
