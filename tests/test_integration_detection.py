"""Cross-module integration tests: detection under harder conditions.

These exercise combinations the unit tests don't: shadowing channels,
multiple simultaneous monitors, multi-hop background traffic, and the
extension attack strategies running through the full simulator.
"""

import pytest

from repro.core.detector import BackoffMisbehaviorDetector, DetectorConfig
from repro.mac.misbehavior import (
    IntermittentMisbehavior,
    PercentageMisbehavior,
)
from repro.routing.relay import MultiHopService
from repro.sim.network import Flow, Simulation, SimulationConfig
from repro.topology.placement import center_pair_indices, grid_positions
from repro.traffic.queue import Packet
from repro.util.rng import RngStream


def _grid_sim(policies=None, seed=3, load=0.6, shadowing=0.0):
    positions = grid_positions()
    sender, monitor = center_pair_indices()
    flows = [
        Flow(source=i, load=load)
        for i in range(len(positions))
        if i != monitor
    ]
    sim = Simulation(
        positions,
        flows=flows,
        policies=policies,
        config=SimulationConfig(seed=seed, shadowing_sigma_db=shadowing),
    )
    return sim, sender, monitor


class TestShadowingChannel:
    @staticmethod
    def _pick_decodable_monitor(sim, sender, fallback):
        """Shadowing can silence the nominal S-R link; monitor from any
        neighbor that can actually decode the sender."""
        neighbors = sorted(sim.medium.neighbors(sender))
        return neighbors[0] if neighbors else fallback

    def test_honest_node_stays_clean_under_shadowing(self):
        sim, sender, monitor = _grid_sim(shadowing=4.0, seed=11)
        monitor = self._pick_decodable_monitor(sim, sender, monitor)
        det = BackoffMisbehaviorDetector(
            monitor, sender,
            config=DetectorConfig(sample_size=25, known_n=5, known_k=5),
        )
        sim.add_listener(det)
        sim.run(12.0)
        stat = [v for v in det.verdicts if not v.deterministic]
        if stat:
            rate = sum(v.is_malicious for v in stat) / len(stat)
            assert rate < 0.2
        assert len(det.violations) == 0

    def test_cheater_caught_under_shadowing(self):
        sender, _ = center_pair_indices()
        sim, sender, monitor = _grid_sim(
            policies={sender: PercentageMisbehavior(70)},
            shadowing=4.0,
            seed=11,
        )
        monitor = self._pick_decodable_monitor(sim, sender, monitor)
        det = BackoffMisbehaviorDetector(
            monitor, sender,
            config=DetectorConfig(sample_size=25, known_n=5, known_k=5),
        )
        sim.add_listener(det)
        sim.run(20.0)
        assert len(det.observations) > 0
        assert det.flagged_malicious


class TestMultipleMonitors:
    def test_independent_monitors_agree(self):
        """The paper: every neighbor monitors; here two monitors watch
        the same cheater and both should converge to the same verdict."""
        positions = grid_positions()
        sender, monitor = center_pair_indices()
        second_monitor = sender - 1  # the neighbor on the other side
        flows = [
            Flow(source=i, load=0.6)
            for i in range(len(positions))
            if i not in (monitor, second_monitor)
        ]
        sim = Simulation(
            positions,
            flows=flows,
            policies={sender: PercentageMisbehavior(65)},
            config=SimulationConfig(seed=21),
        )
        detectors = [
            BackoffMisbehaviorDetector(
                m, sender,
                config=DetectorConfig(sample_size=25, known_n=5, known_k=5),
            )
            for m in (monitor, second_monitor)
        ]
        for det in detectors:
            sim.add_listener(det)
        sim.run(12.0)
        for det in detectors:
            assert det.flagged_malicious, f"monitor {det.monitor_id} missed it"


class TestIntermittentAttack:
    def test_diluted_cheat_detected_with_larger_windows(self):
        positions = grid_positions()
        sender, monitor = center_pair_indices()
        policy = IntermittentMisbehavior(
            PercentageMisbehavior(90), 0.5, RngStream(4, "dilute")
        )
        flows = [
            Flow(source=i, load=0.6)
            for i in range(len(positions))
            if i != monitor
        ]
        sim = Simulation(
            positions,
            flows=flows,
            policies={sender: policy},
            config=SimulationConfig(seed=13),
        )
        det = BackoffMisbehaviorDetector(
            monitor, sender,
            config=DetectorConfig(sample_size=50, known_n=5, known_k=5),
        )
        sim.add_listener(det)
        sim.run(20.0)
        assert policy.cheated_draws > 0
        assert det.flagged_malicious


class TestDetectionWithRelayTraffic:
    def test_background_multihop_does_not_break_detection(self):
        """Multi-hop relays add realistic forwarded contention around the
        monitored pair; detection still works."""
        positions = grid_positions()
        sender, monitor = center_pair_indices()
        flows = [
            Flow(source=i, load=0.4)
            for i in range(0, len(positions), 3)
            if i not in (monitor, sender)
        ]
        sim = Simulation(
            positions,
            flows=[Flow(source=sender, destination=monitor, load=0.6)] + flows,
            policies={sender: PercentageMisbehavior(70)},
            config=SimulationConfig(seed=17),
        )
        relay = MultiHopService(sim.macs, link_provider=sim.medium)
        sim.add_listener(relay)
        # Inject a few cross-grid multi-hop packets.
        far_src, far_dst = 0, len(positions) - 1
        hop = relay.first_hop(far_src, far_dst)
        for _ in range(5):
            sim.macs[far_src].enqueue(
                Packet(source=far_src, destination=hop, final_destination=far_dst)
            )
        det = BackoffMisbehaviorDetector(
            monitor, sender,
            config=DetectorConfig(sample_size=25, known_n=5, known_k=5),
        )
        sim.add_listener(det)
        sim.run(15.0)
        assert det.flagged_malicious
        assert relay.forwarded > 0
