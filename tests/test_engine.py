"""Unit tests for the event-driven simulation engine.

Uses miniature networks where exact slot arithmetic can be checked by
hand against the DCF rules.
"""

import pytest

from repro.mac.constants import DEFAULT_TIMING
from repro.mac.dcf import DcfMac
from repro.phy.channel import Channel
from repro.phy.medium import Medium
from repro.sim.engine import EventKind, SimulationEngine
from repro.sim.listeners import SimulationListener, StatsCollector
from repro.traffic.queue import Packet


class _Recorder(SimulationListener):
    def __init__(self):
        self.starts = []
        self.ends = []

    def on_transmission_start(self, slot, tx, medium):
        self.starts.append((slot, tx.sender, tx.receiver))

    def on_transmission_end(self, slot, tx, success, medium):
        self.ends.append((slot, tx.sender, success, tx.start_slot, tx.end_slot))


def _engine(positions, listeners=None):
    medium = Medium(Channel())
    medium.update_positions(positions)
    macs = {i: DcfMac(i) for i in positions}
    engine = SimulationEngine(
        medium, macs, DEFAULT_TIMING, listeners=listeners or []
    )
    return engine, medium, macs


class TestSingleTransmission:
    def test_exact_timing(self):
        rec = _Recorder()
        engine, _medium, macs = _engine({0: (0, 0), 1: (200, 0)}, [rec])
        macs[0].enqueue(Packet(source=0, destination=1))
        engine.run_until(100_000)

        t = DEFAULT_TIMING
        backoff = macs[0].prng.dictated_backoff(0, 1)
        expected_start = t.difs_slots + backoff
        assert rec.starts[0] == (expected_start, 0, 1)
        slot, sender, success, start, end = rec.ends[0]
        assert success
        assert end - start == t.exchange_slots

    def test_queue_drains(self):
        engine, _medium, macs = _engine({0: (0, 0), 1: (200, 0)})
        for _ in range(3):
            macs[0].enqueue(Packet(source=0, destination=1))
        engine.run_until(100_000)
        assert not macs[0].has_traffic
        assert macs[0].stats.successes == 3

    def test_unreachable_receiver_fails_and_drops(self):
        rec = _Recorder()
        engine, _medium, macs = _engine({0: (0, 0), 1: (5000, 0)}, [rec])
        macs[0].enqueue(Packet(source=0, destination=1))
        engine.run_until(1_000_000)
        assert all(not success for _s, _snd, success, _a, _b in rec.ends)
        assert macs[0].stats.drops == 1
        assert len(rec.ends) == DEFAULT_TIMING.retry_limit

    def test_failed_handshake_short_busy_period(self):
        rec = _Recorder()
        engine, _medium, macs = _engine({0: (0, 0), 1: (5000, 0)}, [rec])
        macs[0].enqueue(Packet(source=0, destination=1))
        engine.run_until(1_000_000)
        _slot, _sender, _success, start, end = rec.ends[0]
        assert end - start == DEFAULT_TIMING.handshake_slots

    def test_retry_backoffs_follow_prs(self):
        """Each retry consumes the next PRS offset with a doubled CW."""
        rec = _Recorder()
        engine, _medium, macs = _engine({0: (0, 0), 1: (5000, 0)}, [rec])
        macs[0].enqueue(Packet(source=0, destination=1))
        engine.run_until(1_000_000)
        t = DEFAULT_TIMING
        prng = macs[0].prng
        expected = t.difs_slots + prng.dictated_backoff(0, 1)
        assert rec.starts[0][0] == expected
        # Second attempt: DIFS + dictated(offset=1, attempt=2) after the
        # failed handshake ends.
        second = rec.ends[0][0] + t.difs_slots + prng.dictated_backoff(1, 2)
        assert rec.starts[1][0] == second


class TestContention:
    def test_two_contenders_serialize(self):
        """Nodes within sensing range overlap only by colliding in the
        same slot (both timers hit zero together) — never partially."""
        rec = _Recorder()
        engine, _medium, macs = _engine(
            {0: (0, 0), 1: (240, 0), 2: (120, 200)}, [rec]
        )
        for _ in range(3):
            macs[0].enqueue(Packet(source=0, destination=2))
            macs[1].enqueue(Packet(source=1, destination=2))
        engine.run_until(500_000)
        periods = sorted((start, end) for _s, _snd, _ok, start, end in rec.ends)
        for (s1, e1), (s2, e2) in zip(periods, periods[1:]):
            assert s2 >= e1 or s2 == s1, f"partial overlap: ({s1},{e1}) vs ({s2},{e2})"

    def test_freeze_preserves_total_countdown(self):
        """A node frozen by a neighbor's transmission still counts its
        full dictated back-off in total."""
        rec = _Recorder()
        engine, _medium, macs = _engine({0: (0, 0), 1: (240, 0), 2: (480, 0)}, [rec])
        # Node 1 will grab the channel first (we give node 0 a head start
        # by enqueueing node 1 with a packet while 0 arrives later).
        macs[1].enqueue(Packet(source=1, destination=0))
        macs[0].enqueue(Packet(source=0, destination=1))
        engine.run_until(500_000)
        # Whatever the interleaving, both queues drained successfully.
        assert macs[0].stats.successes == 1
        assert macs[1].stats.successes == 1

    def test_hidden_terminal_corrupts(self):
        """0 and 2 are out of each other's sensing range (1300 m apart)
        but both interfere at 1 (650 m from each): simultaneous sends
        collide at the receiver."""
        rec = _Recorder()
        positions = {0: (0, 0), 1: (650, 0), 2: (1300, 0)}
        medium = Medium(Channel(transmission_range=700, sensing_range=700))
        medium.update_positions(positions)
        macs = {i: DcfMac(i) for i in positions}
        engine = SimulationEngine(medium, macs, DEFAULT_TIMING, listeners=[rec])
        macs[0].enqueue(Packet(source=0, destination=1))
        macs[2].enqueue(Packet(source=2, destination=1))
        engine.run_until(2_000_000)
        # With identical arrival times and independent back-offs the two
        # senders cannot sense each other; at least one early attempt
        # must have failed (they start within a handshake of each other).
        failures = [e for e in rec.ends if not e[2]]
        assert failures, "hidden terminals never collided"
        # Both eventually succeed via retries.
        assert macs[0].stats.successes == 1
        assert macs[2].stats.successes == 1


class TestEngineMechanics:
    def test_cannot_schedule_in_past(self):
        engine, _medium, _macs = _engine({0: (0, 0)})
        engine.now = 100
        with pytest.raises(ValueError):
            engine.schedule(50, EventKind.ARRIVAL, 0)

    def test_run_until_advances_clock(self):
        engine, _medium, _macs = _engine({0: (0, 0)})
        engine.run_until(500)
        assert engine.now == 500

    def test_stop_condition(self):
        rec = _Recorder()
        engine, _medium, macs = _engine({0: (0, 0), 1: (200, 0)}, [rec])
        for _ in range(10):
            macs[0].enqueue(Packet(source=0, destination=1))
        engine.run_until(1_000_000, stop_condition=lambda: len(rec.ends) >= 2)
        assert len(rec.ends) == 2
        assert engine.now < 1_000_000

    def test_stats_collector_integration(self):
        stats = StatsCollector()
        engine, _medium, macs = _engine({0: (0, 0), 1: (200, 0)}, [stats])
        macs[0].enqueue(Packet(source=0, destination=1))
        engine.run_until(100_000)
        assert stats.transmissions == 1
        assert stats.successes == 1
        assert stats.success_ratio == 1.0
