"""Serve-vs-simulator equivalence and the bounded-memory soak.

The streaming service's correctness anchor: a captured simulator stream
replayed through :func:`repro.serve.shard.run_serve` must produce the
same verdicts, audit records, and provenance records — byte for byte —
as the in-process observatory detectors that watched the same run,
at any worker count.  The committed golden
(``tests/golden/serve_streams.json``) additionally pins each scenario's
captured stream bytes and combined detection fingerprint, so stream
codec drift and detection drift each trip a named assertion.

To regenerate after an intentional change::

    PYTHONPATH=src python -m pytest tests/test_serve_equivalence.py --update-golden

The soak half replays a two-phase synthetic stream (cold churn, then a
hot working set) through a memory-capped session and proves the caps
fire — links evicted, observations compacted, timelines pruned — while
the hot links' verdict/audit/provenance streams stay identical to an
uncapped run's.
"""

from __future__ import annotations

import dataclasses
import hashlib
import itertools
import json
from pathlib import Path

import pytest

from repro.core.detector import DetectorConfig, reset_region_cache
from repro.core.observatory import SharedChannelObservatory
from repro.experiments.runner import reset_fidelity_cache
from repro.mac.constants import DEFAULT_TIMING
from repro.obs.audit import DecisionAuditLog
from repro.obs.provenance import ProvenanceLog
from repro.serve.capture import (
    STREAM_SCENARIOS,
    StreamCapture,
    synthetic_links,
    synthetic_stream,
)
from repro.serve.server import (
    ServeConfig,
    export_detector,
    result_fingerprint,
)
from repro.serve.shard import run_serve
from repro.traffic import queue as traffic_queue

GOLDEN_PATH = Path(__file__).parent / "golden" / "serve_streams.json"

CONFIG = DetectorConfig(sample_size=25, known_n=5, known_k=5)

#: Scenarios pinned by the golden (one static cheat, one mobile, one
#: dense multi-monitor grid with two cheaters).
GOLDEN_SCENARIOS = ("grid-cheat", "mobile", "multi")

JOBS = (1, 2, 4)


def _fresh_process_state():
    traffic_queue._packet_ids = itertools.count()
    reset_region_cache()
    reset_fidelity_cache()


def _sha(text: str) -> str:
    return hashlib.sha256(text.encode()).hexdigest()


_RUNS = {}


def _captured_run(name: str):
    """One scenario run with the stream capture AND the in-process
    observatory attached — the serve replay and its reference come from
    the same events.  Memoized: captures are same-seed deterministic and
    read-only, so every jobs-parametrization shares one simulation."""
    if name in _RUNS:
        return _RUNS[name]
    _fresh_process_state()
    sim, pairs, separation, duration_s = STREAM_SCENARIOS[name](3.0)
    capture = StreamCapture(pairs)
    sim.add_listener(capture)
    observatory = SharedChannelObservatory()
    sim.add_listener(observatory)
    attached = []
    for seq, (monitor, tagged) in enumerate(pairs):
        audit = DecisionAuditLog()
        provenance = ProvenanceLog()
        detector = observatory.attach(
            monitor,
            tagged,
            config=CONFIG,
            separation=separation,
            audit=audit,
            provenance=provenance,
        )
        attached.append((monitor, tagged, seq, detector, audit, provenance))
    sim.run(duration_s)
    reference = [
        export_detector(monitor, tagged, seq, detector, audit, provenance)
        for monitor, tagged, seq, detector, audit, provenance in attached
    ]
    _RUNS[name] = (capture.finished_lines(), pairs, separation, reference)
    return _RUNS[name]


def _serve_config(separation):
    return ServeConfig(
        detector=CONFIG,
        separation=separation,
        discover=False,
        flush_every=32,
    )


class TestServeEquivalence:
    @pytest.mark.parametrize("jobs", JOBS)
    @pytest.mark.parametrize("name", GOLDEN_SCENARIOS)
    def test_replay_matches_in_process_reference(self, name, jobs):
        lines, pairs, separation, reference = _captured_run(name)
        result = run_serve(
            iter(lines), _serve_config(separation), links=pairs, jobs=jobs
        )
        assert result.jobs == jobs
        ref_print = result_fingerprint(reference)
        srv_print = result.fingerprint()
        assert srv_print["combined"] == ref_print["combined"], (
            f"{name} at jobs={jobs}: streamed detection diverged from the "
            f"in-process observatory (per-link: "
            f"{ {k: (srv_print['links'].get(k), v) for k, v in ref_print['links'].items() if srv_print['links'].get(k) != v} })"
        )
        assert srv_print == ref_print

    @pytest.mark.parametrize("name", GOLDEN_SCENARIOS)
    def test_merged_logs_are_jobs_invariant(self, name):
        lines, pairs, separation, _reference = _captured_run(name)
        outputs = []
        for jobs in JOBS:
            result = run_serve(
                iter(lines), _serve_config(separation), links=pairs, jobs=jobs
            )
            outputs.append(
                (jobs, result.audit_jsonl(), result.provenance_jsonl())
            )
        _jobs0, audit0, provenance0 = outputs[0]
        for jobs, audit, provenance in outputs[1:]:
            assert audit == audit0, f"audit interleaving moved at jobs={jobs}"
            assert provenance == provenance0, (
                f"provenance interleaving moved at jobs={jobs}"
            )

    @pytest.mark.parametrize("name", GOLDEN_SCENARIOS)
    def test_golden_stream_fingerprint(self, name, request):
        lines, _pairs, separation, reference = _captured_run(name)
        stream_text = "\n".join(lines)
        entry = {
            "scenario": name,
            "lines": len(lines),
            "stream_sha256": _sha(stream_text),
            "combined": result_fingerprint(reference)["combined"],
            "link_count": len(reference),
            "verdicts": sum(len(link.verdicts) for link in reference),
            "observations": sum(len(link.observations) for link in reference),
        }
        golden = (
            json.loads(GOLDEN_PATH.read_text()) if GOLDEN_PATH.exists() else {}
        )
        if request.config.getoption("--update-golden"):
            golden[name] = entry
            GOLDEN_PATH.write_text(
                json.dumps(golden, indent=2, sort_keys=True) + "\n"
            )
            pytest.skip(f"regenerated {GOLDEN_PATH.name}[{name}]")
        assert name in golden, (
            f"missing golden entry {name!r}; regenerate with --update-golden"
        )
        assert entry == golden[name], (
            f"{name}: same-seed capture or detection fingerprint drifted "
            f"from {GOLDEN_PATH.name} — if intentional, rerun with "
            "--update-golden and commit"
        )

    def test_discovery_finds_the_monitored_links(self):
        lines, pairs, separation, _reference = _captured_run("multi")
        result = run_serve(
            iter(lines),
            ServeConfig(detector=CONFIG, separation=separation),
            jobs=1,
        )
        discovered = {(link.monitor, link.tagged) for link in result.links}
        assert discovered
        assert discovered <= set(pairs)
        assert all(link.discovered for link in result.links)
        assert sum(len(link.observations) for link in result.links) > 0


# -- bounded-memory soak ---------------------------------------------------

COLD_LINKS = 300
COLD_SAMPLES = 35
HOT_LINKS = 100
HOT_SAMPLES = 140
LINK_CAP = 120

SOAK_CONFIG = dataclasses.replace(CONFIG, warmup_slots=0)


def _soak_stream():
    """Cold churn then a hot working set, ~49k events total.

    Phase 1: 300 short-lived links (the churn an LRU cap must absorb).
    Phase 2: 100 fresh links carrying 4x the traffic, offset past every
    phase-1 slot so the concatenation stays slot-monotone.
    """
    timing = DEFAULT_TIMING
    phase1_bound = 97 + COLD_SAMPLES * (
        timing.difs_slots + timing.cw_min + timing.exchange_slots
    )
    cold = synthetic_stream(COLD_LINKS, COLD_SAMPLES, emit_shutdown=False)
    hot = synthetic_stream(
        HOT_LINKS,
        HOT_SAMPLES,
        monitor_base=1_500_000,
        tagged_base=2_500_000,
        start_slot=phase1_bound + 1,
    )
    return itertools.chain(cold, hot)


def _hot_links(result):
    return sorted(
        (
            link
            for link in result.links
            if (link.monitor, link.tagged) in set(synthetic_links(
                HOT_LINKS, monitor_base=1_500_000, tagged_base=2_500_000
            ))
        ),
        key=lambda link: (link.monitor, link.tagged),
    )


@pytest.mark.slow
def test_soak_bounded_memory_preserves_live_link_verdicts():
    capped = run_serve(
        _soak_stream(),
        ServeConfig(
            detector=SOAK_CONFIG,
            max_links=LINK_CAP,
            observation_retention=64,
            maintain_every=256,
        ),
        jobs=1,
    )
    uncapped = run_serve(
        _soak_stream(),
        ServeConfig(detector=SOAK_CONFIG),
        jobs=1,
    )

    # The caps actually fired: churn forced evictions, maintenance
    # compacted demuxes and pruned timelines, the table stayed bounded.
    assert capped.evicted_links > 0
    assert capped.compacted_observations > 0
    assert capped.pruned_intervals > 0
    assert len(capped.links) <= LINK_CAP
    counters = capped.link_snapshot["counters"]
    assert counters.get("serve.links.evicted", 0) > 0
    assert counters.get("serve.observations.compacted", 0) > 0
    assert counters.get("serve.timeline.pruned_intervals", 0) > 0
    assert len(uncapped.links) == COLD_LINKS + HOT_LINKS

    # ... without perturbing detection on the links that stayed live.
    capped_hot = _hot_links(capped)
    uncapped_hot = _hot_links(uncapped)
    assert len(capped_hot) == HOT_LINKS
    assert len(uncapped_hot) == HOT_LINKS
    for capped_link, uncapped_link in zip(capped_hot, uncapped_hot):
        key = f"{capped_link.monitor}->{capped_link.tagged}"
        assert [repr(v) for v in capped_link.verdicts] == [
            repr(v) for v in uncapped_link.verdicts
        ], f"verdicts moved on hot link {key}"
        assert capped_link.violations == uncapped_link.violations, key
        assert capped_link.audit_jsonl() == uncapped_link.audit_jsonl(), key
        assert (
            capped_link.provenance_jsonl() == uncapped_link.provenance_jsonl()
        ), key
        assert (
            capped_link.quarantine_counts == uncapped_link.quarantine_counts
        ), key
        assert capped_link.skipped_samples == uncapped_link.skipped_samples, key
        # Bounded retention kept only the tail (trims run at the
        # maintenance cadence, so a few appends can sit past the cap
        # between sweeps), but virtual indexing means provenance
        # observation ids never noticed.
        assert len(capped_link.observations) <= 64 + 8
        assert len(capped_link.observations) < len(uncapped_link.observations)
