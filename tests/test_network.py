"""Unit tests for the Simulation facade (flows, policies, configs)."""

import pytest

from repro.mac.misbehavior import PercentageMisbehavior
from repro.sim.listeners import StatsCollector
from repro.sim.network import Flow, Simulation, SimulationConfig
from repro.topology.mobility import RandomWaypoint
from repro.topology.placement import grid_positions
from repro.util.rng import RngStream


class TestFlowValidation:
    def test_defaults(self):
        f = Flow(source=0)
        assert f.kind == "poisson"
        assert f.picks_per_packet  # poisson re-picks per packet

    def test_cbr_fixed_destination(self):
        assert not Flow(source=0, kind="cbr").picks_per_packet

    def test_override_per_packet(self):
        assert Flow(source=0, kind="cbr", per_packet_destination=True).picks_per_packet

    def test_invalid_kind(self):
        with pytest.raises(ValueError):
            Flow(source=0, kind="vbr")

    def test_invalid_load(self):
        with pytest.raises(ValueError):
            Flow(source=0, load=0)


class TestSimulationAssembly:
    def test_builds_macs_for_all_nodes(self):
        sim = Simulation(grid_positions(rows=2, cols=2))
        assert set(sim.macs) == {0, 1, 2, 3}

    def test_policies_installed(self):
        policy = PercentageMisbehavior(40)
        sim = Simulation(
            grid_positions(rows=2, cols=2), policies={1: policy}
        )
        assert sim.macs[1].policy is policy
        assert sim.macs[0].policy is not policy

    def test_mac_options(self):
        sim = Simulation(
            grid_positions(rows=2, cols=2),
            mac_options={2: {"announce_attempt_always_one": True}},
        )
        assert sim.macs[2].announce_attempt_always_one

    def test_unknown_flow_source_rejected(self):
        with pytest.raises(ValueError):
            Simulation(grid_positions(rows=2, cols=2), flows=[Flow(source=99)])

    def test_duplicate_flow_source_rejected(self):
        with pytest.raises(ValueError):
            Simulation(
                grid_positions(rows=2, cols=2),
                flows=[Flow(source=0), Flow(source=0)],
            )

    def test_queue_capacity_from_config(self):
        sim = Simulation(
            grid_positions(rows=2, cols=2),
            config=SimulationConfig(queue_capacity=7),
        )
        assert sim.macs[0].queue.capacity == 7


class TestSimulationRuns:
    def test_fixed_destination_flow_delivers(self):
        stats = StatsCollector()
        sim = Simulation(
            grid_positions(rows=1, cols=2),
            flows=[Flow(source=0, destination=1, load=0.3)],
        )
        sim.add_listener(stats)
        sim.run(duration_s=0.5)
        assert stats.successes > 0

    def test_random_neighbor_destination(self):
        stats = StatsCollector()
        sim = Simulation(
            grid_positions(rows=2, cols=2),
            flows=[Flow(source=0, load=0.3)],
        )
        sim.add_listener(stats)
        sim.run(duration_s=0.5)
        assert stats.successes > 0

    def test_reproducibility(self):
        def run(seed):
            stats = StatsCollector()
            sim = Simulation(
                grid_positions(rows=3, cols=3),
                flows=[Flow(source=i, load=0.4) for i in range(4)],
                config=SimulationConfig(seed=seed),
            )
            sim.add_listener(stats)
            sim.run(duration_s=0.5)
            return (stats.transmissions, stats.successes, stats.failures)

        assert run(5) == run(5)
        assert run(5) != run(6)  # different seeds diverge (overwhelmingly)

    def test_run_slots(self):
        sim = Simulation(grid_positions(rows=1, cols=2))
        final = sim.run_slots(1234)
        assert final == 1234

    def test_isolated_node_generates_no_deliveries(self):
        stats = StatsCollector()
        sim = Simulation(
            [(0.0, 0.0), (5000.0, 5000.0)],
            flows=[Flow(source=0, load=0.3)],
        )
        sim.add_listener(stats)
        sim.run(duration_s=0.2)
        assert stats.successes == 0

    def test_mobile_simulation_runs(self):
        initial = grid_positions(rows=2, cols=2, spacing=200)
        mobility = RandomWaypoint(
            initial,
            width=600,
            height=600,
            max_speed=20.0,
            rng=RngStream(4, "wp"),
        )
        stats = StatsCollector()
        sim = Simulation(mobility, flows=[Flow(source=0, load=0.4)])
        sim.add_listener(stats)
        sim.run(duration_s=2.0)
        assert stats.transmissions > 0

    def test_shadowing_config(self):
        sim = Simulation(
            grid_positions(rows=2, cols=2),
            config=SimulationConfig(shadowing_sigma_db=6.0),
        )
        # The propagation model must be the shadowing one.
        from repro.phy.propagation import LogNormalShadowing

        assert isinstance(sim.channel.propagation, LogNormalShadowing)
