"""Tests for repro.obs.history: the perf-trajectory ledger and its gate.

The headline requirement: ``python -m repro.obs.history check`` passes
on a healthy history and demonstrably fails on a synthetic 20%
throughput regression.
"""

from __future__ import annotations

import json

import pytest

from repro.obs.history import (
    DEFAULT_TOLERANCE,
    HISTORY_SCHEMA,
    Comparison,
    append_entries,
    check_history,
    entry_from_manifest,
    load_history,
    main,
    throughput_metrics,
)


def _manifest(name="bench_engine", slots_per_second=50_000.0, **extra_results):
    results = {"slots_per_second": slots_per_second}
    results.update(extra_results)
    return {
        "schema": "repro.obs/manifest/v1",
        "name": name,
        "seed": 7,
        "repro_scale": 1.0,
        "version": "0.7.0",
        "duration_s": 4.0,
        "results": results,
    }


class TestThroughputMetrics:
    def test_flat_keys(self):
        metrics = throughput_metrics(
            {"slots_per_second": 5.0, "events_per_second": 9.0, "wall_s": 2.0}
        )
        assert metrics == {"slots_per_second": 5.0, "events_per_second": 9.0}

    def test_nested_dotted_paths(self):
        metrics = throughput_metrics(
            {"m4x4": {"speedup": 2.76, "note": "x"}, "misc": {"depth": 3}}
        )
        assert metrics == {"m4x4.speedup": 2.76}

    def test_list_index_paths(self):
        metrics = throughput_metrics(
            {"runs": [{"slots_per_second": 1.0}, {"slots_per_second": 2.0}]}
        )
        assert metrics == {
            "runs[0].slots_per_second": 1.0,
            "runs[1].slots_per_second": 2.0,
        }

    def test_suffix_match(self):
        metrics = throughput_metrics({"samples_per_sec": 10.0, "samples": 3})
        assert metrics == {"samples_per_sec": 10.0}

    def test_ignores_bools_and_non_numbers(self):
        assert throughput_metrics({"speedup": True, "x_per_sec": "fast"}) == {}

    def test_keys_sorted(self):
        metrics = throughput_metrics(
            {"z_per_sec": 1.0, "a_per_sec": 2.0, "m_per_sec": 3.0}
        )
        assert list(metrics) == ["a_per_sec", "m_per_sec", "z_per_sec"]


class TestEntryFromManifest:
    def test_from_dict(self):
        entry = entry_from_manifest(_manifest())
        assert entry["schema"] == HISTORY_SCHEMA
        assert entry["name"] == "bench_engine"
        assert entry["repro_scale"] == 1.0
        assert entry["throughput"] == {"slots_per_second": 50_000.0}

    def test_from_path(self, tmp_path):
        path = tmp_path / "BENCH_engine.json"
        path.write_text(json.dumps(_manifest()))
        entry = entry_from_manifest(path)
        assert entry["name"] == "bench_engine"

    def test_missing_required_key(self):
        manifest = _manifest()
        del manifest["repro_scale"]
        with pytest.raises(ValueError, match="repro_scale"):
            entry_from_manifest(manifest)


class TestAppendLoad:
    def test_roundtrip(self, tmp_path):
        history = tmp_path / "hist.jsonl"
        written = append_entries(history, [_manifest(), _manifest("bench_det")])
        assert load_history(history) == written

    def test_append_accumulates(self, tmp_path):
        history = tmp_path / "hist.jsonl"
        append_entries(history, [_manifest()])
        append_entries(history, [_manifest(slots_per_second=51_000.0)])
        entries = load_history(history)
        assert len(entries) == 2
        assert entries[1]["throughput"]["slots_per_second"] == 51_000.0

    def test_load_rejects_bad_schema(self, tmp_path):
        history = tmp_path / "hist.jsonl"
        history.write_text('{"schema":"nope","name":"x","repro_scale":1}\n')
        with pytest.raises(ValueError, match="unsupported value 'nope'"):
            load_history(history)


def _history_with(tmp_path, *throughputs, name="bench_engine"):
    history = tmp_path / "hist.jsonl"
    append_entries(
        history,
        [_manifest(name, slots_per_second=value) for value in throughputs],
    )
    return history


class TestCheckHistory:
    def test_healthy_history_passes(self, tmp_path):
        history = _history_with(tmp_path, 50_000.0, 52_000.0)
        result = check_history(history)
        assert result.ok
        assert len(result.comparisons) == 1
        assert result.comparisons[0].change == pytest.approx(0.04)

    def test_synthetic_20_percent_regression_fails(self, tmp_path):
        history = _history_with(tmp_path, 50_000.0, 40_000.0)
        result = check_history(history)
        assert not result.ok
        (failure,) = result.failures
        assert failure.metric == "slots_per_second"
        assert failure.change == pytest.approx(-0.20)
        assert "REGRESSED" in result.render()

    def test_exactly_15_percent_is_tolerated(self, tmp_path):
        history = _history_with(tmp_path, 100_000.0, 85_000.0)
        assert check_history(history, tolerance=DEFAULT_TOLERANCE).ok

    def test_single_entry_groups_skipped(self, tmp_path):
        history = _history_with(tmp_path, 50_000.0)
        result = check_history(history)
        assert result.ok
        assert result.comparisons == []
        assert "no comparable entry pairs" in result.render()

    def test_groups_isolated_by_scale(self, tmp_path):
        history = tmp_path / "hist.jsonl"
        fast = _manifest(slots_per_second=50_000.0)
        slow = _manifest(slots_per_second=10_000.0)
        slow["repro_scale"] = 0.1
        append_entries(history, [fast, slow])
        # Different scales never compare against each other.
        assert check_history(history).comparisons == []

    def test_baseline_is_oldest_newest_is_candidate(self, tmp_path):
        history = _history_with(tmp_path, 50_000.0, 60_000.0, 30_000.0)
        (comp,) = check_history(history).comparisons
        assert comp.baseline == 50_000.0
        assert comp.newest == 30_000.0

    def test_improvement_never_fails(self, tmp_path):
        history = _history_with(tmp_path, 50_000.0, 100_000.0)
        assert check_history(history).ok


class TestComparison:
    def test_change_fraction(self):
        comp = Comparison("b", 1.0, "m", baseline=100.0, newest=120.0)
        assert comp.change == pytest.approx(0.20)

    def test_zero_baseline_never_regresses(self):
        comp = Comparison("b", 1.0, "m", baseline=0.0, newest=0.0)
        assert comp.change == 0.0
        assert not comp.regressed(0.15)


class TestCli:
    def test_append_then_check_ok(self, tmp_path, capsys):
        manifest = tmp_path / "BENCH_engine.json"
        manifest.write_text(json.dumps(_manifest()))
        history = tmp_path / "hist.jsonl"
        assert main(["append", str(manifest), "--history", str(history)]) == 0
        assert main(["check", "--history", str(history)]) == 0
        out = capsys.readouterr().out
        assert "appended bench_engine" in out
        assert "perf history" in out

    def test_check_exit_1_on_regression(self, tmp_path, capsys):
        history = _history_with(tmp_path, 50_000.0, 40_000.0)
        assert main(["check", "--history", str(history)]) == 1
        assert "REGRESSED" in capsys.readouterr().out

    def test_check_exit_2_on_missing_file(self, tmp_path, capsys):
        missing = tmp_path / "absent.jsonl"
        assert main(["check", "--history", str(missing)]) == 2
        assert "not found" in capsys.readouterr().err

    def test_append_exit_2_on_bad_manifest(self, tmp_path, capsys):
        bad = tmp_path / "BENCH_bad.json"
        bad.write_text('{"results": {}}')
        history = tmp_path / "hist.jsonl"
        assert main(["append", str(bad), "--history", str(history)]) == 2
        assert "error" in capsys.readouterr().err

    def test_tolerance_flag(self, tmp_path):
        history = _history_with(tmp_path, 50_000.0, 40_000.0)
        assert main(
            ["check", "--history", str(history), "--tolerance", "0.25"]
        ) == 0

    def test_committed_baseline_passes(self):
        # The repository's own ledger must always satisfy its own gate.
        assert main(["check"]) == 0
