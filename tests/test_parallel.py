"""Determinism of repro.experiments.parallel under any worker count."""

import json

import pytest

from repro.experiments import parallel
from repro.experiments.fig3 import grid_poisson_factory, run_probability_sweep
from repro.experiments.fig5 import grid_factory, run_detection_curve
from repro.experiments.parallel import resolve_jobs, run_trials, set_default_jobs
from repro.obs.runtime import (
    disable_metrics,
    enable_metrics,
    metrics_enabled,
    reset_metrics,
    shared_registry,
)


def _square(task):
    return task * task


def _instrumented(task):
    """A trial that feeds the metrics registry like a real engine run."""
    if metrics_enabled():
        registry = shared_registry()
        registry.inc("trial.count")
        registry.observe("trial.value", task)
        registry.set_gauge("trial.last", task)
    return task + 1


def _unpicklable_result(task):
    return lambda: task


def _nested(task):
    """A trial that itself calls run_trials (must degrade to serial)."""
    return run_trials(_square, [task, task + 1], jobs=4)


@pytest.fixture(autouse=True)
def _clear_default_jobs():
    yield
    set_default_jobs(None)


class TestRunTrials:
    def test_results_in_task_order(self):
        items = list(range(12))
        expected = [i * i for i in items]
        assert run_trials(_square, items, jobs=1) == expected
        assert run_trials(_square, items, jobs=2) == expected
        assert run_trials(_square, items, jobs=4) == expected

    def test_empty_items(self):
        assert run_trials(_square, [], jobs=4) == []

    def test_unpicklable_item_falls_back_to_serial(self):
        items = [3, lambda: 4]  # the lambda cannot cross the pipe

        def fn(item):
            return item() if callable(item) else item

        # fn is a closure (unpicklable too) — fork would tolerate it,
        # but the item forces the serial path either way.
        assert run_trials(fn, items, jobs=2) == [3, 4]

    def test_unpicklable_result_falls_back_to_serial(self):
        results = run_trials(_unpicklable_result, [1, 2], jobs=2)
        assert [r() for r in results] == [1, 2]

    def test_nested_call_runs_serially(self):
        assert run_trials(_nested, [2, 5], jobs=2) == [[4, 9], [25, 36]]


class TestJobsResolution:
    def test_defaults_to_serial(self, monkeypatch):
        monkeypatch.delenv(parallel.JOBS_ENV, raising=False)
        assert resolve_jobs() == 1

    def test_env_var(self, monkeypatch):
        monkeypatch.setenv(parallel.JOBS_ENV, "3")
        assert resolve_jobs() == 3

    def test_argument_beats_default_beats_env(self, monkeypatch):
        monkeypatch.setenv(parallel.JOBS_ENV, "3")
        set_default_jobs(2)
        assert resolve_jobs() == 2
        assert resolve_jobs(5) == 5

    def test_zero_means_all_cores(self, monkeypatch):
        monkeypatch.delenv(parallel.JOBS_ENV, raising=False)
        assert resolve_jobs(0) >= 1

    def test_invalid_env_raises(self, monkeypatch):
        monkeypatch.setenv(parallel.JOBS_ENV, "many")
        with pytest.raises(ValueError, match="REPRO_JOBS"):
            resolve_jobs()


class TestMetricsMerging:
    def _snapshot_for(self, jobs):
        reset_metrics()
        enable_metrics()
        try:
            results = run_trials(_instrumented, [5.0, 1.0, 9.0, 2.0], jobs=jobs)
            snapshot = shared_registry().snapshot()
        finally:
            disable_metrics()
            reset_metrics()
        return results, json.dumps(snapshot, sort_keys=True)

    def test_snapshots_identical_across_worker_counts(self):
        serial = self._snapshot_for(1)
        assert self._snapshot_for(2) == serial
        assert self._snapshot_for(4) == serial
        snapshot = json.loads(serial[1])
        assert snapshot["counters"]["trial.count"] == 4
        assert snapshot["histograms"]["trial.value"]["count"] == 4
        assert snapshot["histograms"]["trial.value"]["min"] == 1.0
        assert snapshot["histograms"]["trial.value"]["max"] == 9.0
        # Gauges are last-write-wins in task order, like the serial run.
        assert snapshot["gauges"]["trial.last"] == 2.0


class TestSweepEquivalence:
    def test_fig3_points_identical(self):
        kwargs = dict(loads=(0.05, 0.3), runs=2, observe_slots=3_000)
        serial = run_probability_sweep(grid_poisson_factory, jobs=1, **kwargs)
        assert run_probability_sweep(grid_poisson_factory, jobs=2, **kwargs) == serial
        assert run_probability_sweep(grid_poisson_factory, jobs=4, **kwargs) == serial

    def test_fig5_verdicts_identical(self):
        kwargs = dict(
            pm_values=(60,),
            sample_sizes=(10,),
            windows=2,
            runs=2,
            max_duration_s=20.0,
        )
        serial = run_detection_curve(grid_factory, 0.6, jobs=1, **kwargs)
        assert run_detection_curve(grid_factory, 0.6, jobs=2, **kwargs) == serial
        assert run_detection_curve(grid_factory, 0.6, jobs=4, **kwargs) == serial
