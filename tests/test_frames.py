"""Unit tests for MAC frames and digests."""

import pytest

from repro.mac.digest import data_digest, digests_match
from repro.mac.frames import (
    AckFrame,
    CtsFrame,
    DataFrame,
    RtsFrame,
    SEQ_OFF_MODULUS,
)


def _rts(**overrides):
    fields = dict(
        sender=1, receiver=2, seq_off=5, attempt=1, digest=b"\x00" * 16
    )
    fields.update(overrides)
    return RtsFrame(**fields)


class TestRtsFrame:
    def test_fields(self):
        rts = _rts()
        assert rts.sender == 1
        assert rts.receiver == 2
        assert rts.seq_off == 5

    def test_seq_off_field_wraps_13_bits(self):
        rts = _rts(seq_off=SEQ_OFF_MODULUS + 3)
        assert rts.seq_off_field == 3

    def test_attempt_bounds(self):
        with pytest.raises(ValueError):
            _rts(attempt=0)
        with pytest.raises(ValueError):
            _rts(attempt=8)  # the field is 3 bits

    def test_digest_must_be_16_bytes(self):
        with pytest.raises(ValueError):
            _rts(digest=b"\x00" * 15)

    def test_negative_seq_off_rejected(self):
        with pytest.raises(ValueError):
            _rts(seq_off=-1)

    def test_frozen(self):
        rts = _rts()
        with pytest.raises(AttributeError):
            rts.seq_off = 7


class TestOtherFrames:
    def test_cts(self):
        cts = CtsFrame(sender=2, receiver=1)
        assert cts.sender == 2

    def test_data(self):
        d = DataFrame(sender=1, receiver=2, payload=b"xyz", packet_uid=9)
        assert d.payload == b"xyz"

    def test_ack(self):
        assert AckFrame(sender=2, receiver=1).receiver == 1


class TestDigest:
    def test_is_md5(self):
        import hashlib

        payload = b"hello world"
        assert data_digest(payload) == hashlib.md5(payload).digest()

    def test_16_bytes(self):
        assert len(data_digest(b"abc")) == 16

    def test_distinct_payloads_distinct_digests(self):
        assert data_digest(b"a") != data_digest(b"b")

    def test_rejects_str(self):
        with pytest.raises(TypeError):
            data_digest("not bytes")

    def test_accepts_bytearray(self):
        assert data_digest(bytearray(b"abc")) == data_digest(b"abc")

    def test_digests_match(self):
        assert digests_match(data_digest(b"x"), data_digest(b"x"))
        assert not digests_match(data_digest(b"x"), data_digest(b"y"))
