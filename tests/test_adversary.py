"""Announcement adversaries and the colluding pair (repro.mac.adversary).

Unit tests pin each policy's rewrite semantics; integration tests drive
them through a live grid and check which detection layer (if any)
catches each shape:

* ``AttemptReplay``  — caught deterministically (Attempt#/MD rule);
* ``DigestForgery``  — evades the Attempt#/MD rule by construction;
* ``SequenceOffsetLie`` — self-consistent, so SeqOff# monotonicity
  never fires; paired with a shrinking back-off the statistical layer
  still convicts;
* colluding pair — two nodes generate real cover traffic for each
  other (the counters prove the alibi mechanism engaged).
"""

from __future__ import annotations

import pytest

from repro.core.detector import BackoffMisbehaviorDetector, DetectorConfig
from repro.experiments.scenarios import GridScenario
from repro.mac.adversary import (
    AttemptReplay,
    DigestForgery,
    HonestAnnouncement,
    SequenceOffsetLie,
    install_colluding_pair,
)
from repro.mac.digest import data_digest
from repro.mac.frames import RtsFrame
from repro.mac.misbehavior import AlibiBackoff, PercentageMisbehavior

CONFIG = DetectorConfig(sample_size=25, known_n=5, known_k=5)


def _frame(seq_off=0, attempt=1, digest=b"d" * 16):
    return RtsFrame(sender=1, receiver=2, seq_off=seq_off, attempt=attempt,
                    digest=digest)


# -- unit: rewrite semantics --------------------------------------------------


def test_honest_announcement_is_identity():
    frame = _frame(seq_off=7, attempt=3)
    assert HonestAnnouncement().rewrite(frame) is frame


def test_digest_forgery_passes_first_attempts_through():
    policy = DigestForgery()
    frame = _frame(attempt=1)
    assert policy.rewrite(frame) is frame
    assert policy.forged == 0


def test_digest_forgery_disguises_retransmissions():
    policy = DigestForgery()
    retry = _frame(seq_off=5, attempt=3)
    forged = policy.rewrite(retry)
    assert forged.attempt == 1
    assert forged.digest != retry.digest
    assert forged.seq_off == retry.seq_off  # only the identity fields lie
    assert policy.forged == 1
    # Deterministic forgery: the same retry always forges the same digest.
    assert DigestForgery().rewrite(retry).digest == forged.digest


def test_attempt_replay_replays_the_previous_attempt():
    policy = AttemptReplay()
    digest = data_digest(b"pkt-1")
    first = policy.rewrite(_frame(seq_off=0, attempt=1, digest=digest))
    assert first.attempt == 1
    replayed = policy.rewrite(_frame(seq_off=1, attempt=2, digest=digest))
    assert replayed.attempt == 1  # the lie
    assert policy.replays == 1
    # Still stuck on the recorded attempt for further retries.
    again = policy.rewrite(_frame(seq_off=2, attempt=3, digest=digest))
    assert again.attempt == 1
    assert policy.replays == 2


def test_attempt_replay_tracks_fresh_packets():
    policy = AttemptReplay()
    policy.rewrite(_frame(attempt=1, digest=data_digest(b"a")))
    fresh = policy.rewrite(_frame(attempt=1, digest=data_digest(b"b")))
    assert fresh.attempt == 1
    assert policy.replays == 0


def test_sequence_offset_lie_fabricates_a_consistent_counter():
    policy = SequenceOffsetLie(start_offset=100)
    out = [policy.rewrite(_frame(seq_off=real)) for real in (0, 1, 5)]
    assert [f.seq_off for f in out] == [100, 101, 102]
    assert policy.lies == 3  # every announcement differed from reality


def test_sequence_offset_lie_rejects_negative_start():
    with pytest.raises(ValueError):
        SequenceOffsetLie(start_offset=-1)


# -- unit: the colluding pair -------------------------------------------------


def test_alibi_backoff_covers_when_partner_contends():
    partner_active = [False]
    policy = AlibiBackoff(
        partner_probe=lambda: partner_active[0], cover_backoff=1, pm=50.0
    )
    from repro.mac.prng import VerifiableBackoffPrng

    prng = VerifiableBackoffPrng(3, cw_min=31, cw_max=1023)
    own = policy.actual_backoff(prng, 0, 1)
    assert own == int(round(prng.dictated_backoff(0, 1) * 0.5))
    assert policy.own_draws == 1 and policy.cover_draws == 0
    partner_active[0] = True
    assert policy.actual_backoff(prng, 1, 1) == 1
    assert policy.cover_draws == 1


def test_install_colluding_pair_rejects_self_collusion():
    sim, sender, _monitor = GridScenario(load=0.6, seed=11).build()
    with pytest.raises(ValueError):
        install_colluding_pair(sim, sender, sender)


def test_install_colluding_pair_wires_both_macs():
    sim, sender, monitor = GridScenario(load=0.6, seed=11).build()
    partner = next(n for n in sim.macs if n not in (sender, monitor))
    policy_a, policy_b = install_colluding_pair(sim, sender, partner, pm=60.0)
    assert sim.macs[sender].policy is policy_a
    assert sim.macs[partner].policy is policy_b
    # Each probe watches the *other* node's contention state.
    sim.macs[partner].backoff.start(5)
    assert policy_a.partner_probe() and not policy_b.partner_probe()


# -- integration: which layer catches what ------------------------------------


def _run_grid(announcement=None, policy=None, seconds=40.0, target=150, seed=11):
    scenario = GridScenario(load=0.6, seed=seed)
    _sim, sender, _monitor = scenario.build()
    policies = {sender: policy} if policy is not None else None
    mac_options = (
        {sender: {"announcement": announcement}}
        if announcement is not None
        else None
    )
    sim, sender, monitor = scenario.build(
        policies=policies, mac_options=mac_options
    )
    detector = BackoffMisbehaviorDetector(monitor, sender, config=CONFIG)
    sim.add_listener(detector)
    sim.run(
        seconds,
        stop_condition=lambda: detector.observation_count >= target,
    )
    return detector


def test_attempt_replay_is_caught_deterministically():
    policy = AttemptReplay()
    detector = _run_grid(announcement=policy)
    assert policy.replays > 0  # collisions forced retransmissions
    kinds = {v.kind for v in detector.violations}
    assert "attempt_number" in kinds


def test_digest_forgery_evades_the_attempt_verifier():
    policy = DigestForgery()
    detector = _run_grid(announcement=policy)
    assert policy.forged > 0
    kinds = {v.kind for v in detector.violations}
    # The forged announcements are internally consistent: no digest
    # repeats, every fresh digest starts at attempt 1, offsets advance.
    assert "attempt_number" not in kinds
    assert "seq_offset" not in kinds


def test_sequence_offset_lie_never_trips_monotonicity():
    policy = SequenceOffsetLie(start_offset=300)
    detector = _run_grid(announcement=policy)
    assert policy.lies > 0
    assert "seq_offset" not in {v.kind for v in detector.violations}


def test_sequence_offset_lie_with_shrink_caught_statistically():
    """The pure statistical test case: a coherent announcement stream
    over a shrunken countdown still shifts the rank-sum comparison."""
    detector = _run_grid(
        announcement=SequenceOffsetLie(start_offset=300),
        policy=PercentageMisbehavior(60),
        seconds=60.0,
        target=200,
    )
    malicious = [
        v for v in detector.verdicts if v.diagnosis.value == "malicious"
    ]
    assert malicious


def test_colluding_pair_generates_cover_traffic():
    scenario = GridScenario(load=0.6, seed=11)
    sim, sender, monitor = scenario.build()
    sim.run(2.0)
    partner = next(
        n
        for n, mac in sim.macs.items()
        if n not in (sender, monitor) and mac.stats.backoffs_drawn > 0
    )
    sim, sender, monitor = scenario.build()
    policy_a, policy_b = install_colluding_pair(
        sim, sender, partner, pm=60.0, cover_backoff=1
    )
    detector = BackoffMisbehaviorDetector(monitor, sender, config=CONFIG)
    sim.add_listener(detector)
    sim.run(20.0)
    # Both halves of the alibi engaged: shrunken own draws and cover
    # jumps into the partner's contention intervals.
    assert policy_a.own_draws > 0 and policy_b.own_draws > 0
    assert policy_a.cover_draws + policy_b.cover_draws > 0
    assert detector.observation_count > 0
