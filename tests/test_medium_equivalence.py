"""Equivalence of the incremental Medium against a brute-force reference.

The incremental carrier-sense indexes (per-listener sensed maps +
lazy busy-until heaps) must answer every query exactly as a full scan
of the active transmissions would.  A seeded random driver applies
start / extend / end / update_positions sequences to both and compares
every query after every operation.
"""

import pytest

from repro.phy.channel import Channel
from repro.phy.medium import Medium, Transmission
from repro.util.rng import RngStream


class BruteForceReference:
    """The O(active transmissions) semantics the Medium must match.

    Reuses the Medium's adjacency sets (those are not under test) but
    answers every carrier-sense query by scanning a shadow copy of the
    active transmissions.
    """

    def __init__(self, medium):
        self._medium = medium
        self._active = {}

    def start(self, tx_id, tx):
        self._active[tx_id] = tx

    def end(self, tx_id):
        del self._active[tx_id]

    def is_transmitting(self, node_id):
        return any(tx.sender == node_id for tx in self._active.values())

    def senses_busy(self, node_id):
        return any(
            self._medium.senses(tx.sender, node_id)
            for tx in self._active.values()
        )

    def busy_until(self, node_id):
        ends = [
            tx.end_slot
            for tx in self._active.values()
            if self._medium.senses(tx.sender, node_id)
        ]
        return max(ends) if ends else None

    def interferers_at(self, receiver, exclude_sender):
        return [
            tx.sender
            for tx in self._active.values()
            if self._medium.senses(tx.sender, receiver)
            and tx.sender != exclude_sender
        ]

    def active_handshakes(self):
        return [
            (tx_id, tx)
            for tx_id, tx in self._active.items()
            if tx.kind == "handshake"
        ]


def _assert_equivalent(medium, reference, node_ids):
    for node in node_ids:
        assert medium.is_transmitting(node) == reference.is_transmitting(node)
        assert medium.senses_busy(node) == reference.senses_busy(node)
        assert medium.busy_until(node) == reference.busy_until(node)
        for exclude in (None, node):
            assert medium.interferers_at(node, exclude_sender=exclude) == (
                reference.interferers_at(node, exclude_sender=exclude)
            )
    assert list(medium.active_handshakes()) == reference.active_handshakes()


def _positions(rng, count, span=1200.0):
    return {i: rng.random_point(span, span) for i in range(count)}


@pytest.mark.parametrize("seed", [1, 7, 23])
def test_random_sequences_match_brute_force(seed):
    rng = RngStream(seed, "medium-equivalence")
    nodes = 14
    medium = Medium(Channel())
    medium.update_positions(_positions(rng, nodes))
    reference = BruteForceReference(medium)
    node_ids = range(nodes)

    live = {}  # tx_id -> Transmission
    clock = 0
    for _step in range(300):
        clock += 1
        op = rng.integers(0, 100)
        if op < 40 or not live:  # start
            sender = rng.integers(0, nodes)
            receiver = (sender + 1 + rng.integers(0, nodes - 1)) % nodes
            tx = Transmission(
                sender=sender,
                receiver=receiver,
                start_slot=clock,
                end_slot=clock + 1 + rng.integers(0, 30),
                kind="handshake" if rng.integers(0, 2) else "data",
            )
            tx_id = medium.start_transmission(tx)
            reference.start(tx_id, tx)
        elif op < 70:  # end
            tx_id = rng.choice(sorted(live))
            medium.end_transmission(tx_id)
            reference.end(tx_id)
        elif op < 90:  # extend (never shrink), sometimes flip the kind
            tx_id = rng.choice(sorted(live))
            tx = live[tx_id]
            new_end = tx.end_slot + rng.integers(0, 25)
            kind = "exchange" if rng.integers(0, 2) else None
            medium.extend_transmission(tx_id, new_end, kind=kind)
            if kind is not None:
                tx.kind = kind  # the reference shares the Transmission
        else:  # mobility epoch: reachability and indexes rebuild
            medium.update_positions(_positions(rng, nodes))
        live = dict(medium.active_items())
        _assert_equivalent(medium, reference, node_ids)


def test_busy_heap_stays_bounded_on_long_runs():
    """Lazy deletion must not leak: heaps stay O(active transmissions).

    The busy-until heaps never eagerly remove ended or superseded
    entries; without periodic compaction a long mobile run with one
    persistent sensed transmission accumulates one stale tuple per
    ended/extended transmission forever.  The compaction threshold is
    ``2 * len(tracked) + slack``, so with a single live transmission
    the heap must stay a small constant regardless of churn.
    """
    rng = RngStream(13, "medium-heap-growth")
    medium = Medium(Channel())
    medium.update_positions({0: (0, 0), 1: (100, 0), 2: (200, 0)})
    listener = 1
    # One persistent transmission keeps listener 1's tracked set
    # non-empty, so stale entries cannot be cleared by the
    # everything-ended fast path.
    persistent = Transmission(sender=0, receiver=1, start_slot=0, end_slot=10**9)
    persistent_id = medium.start_transmission(persistent)
    clock = 0
    max_heap = 0
    for _cycle in range(2000):
        clock += 1
        tx = Transmission(
            sender=2,
            receiver=1,
            start_slot=clock,
            end_slot=clock + 1 + rng.integers(0, 5),
        )
        tx_id = medium.start_transmission(tx)
        if rng.integers(0, 2):
            medium.extend_transmission(tx_id, tx.end_slot + rng.integers(0, 5))
        medium.end_transmission(tx_id)
        tracked = medium._sensed_active[listener]
        heap = medium._busy_heaps[listener]
        assert len(heap) <= 2 * len(tracked) + 16
        max_heap = max(max_heap, len(heap))
        assert medium.busy_until(listener) == persistent.end_slot
    assert max_heap <= 2 * 2 + 16  # never more than two live transmissions
    medium.end_transmission(persistent_id)
    assert medium.busy_until(listener) is None


def test_extend_keeps_busy_until_exact():
    """Superseded heap entries must never resurface as busy_until."""
    rng = RngStream(5, "medium-extend")
    medium = Medium(Channel())
    medium.update_positions({0: (0, 0), 1: (100, 0), 2: (200, 0)})
    reference = BruteForceReference(medium)
    tx = Transmission(sender=0, receiver=1, start_slot=0, end_slot=10)
    tx_id = medium.start_transmission(tx)
    reference.start(tx_id, tx)
    for _ in range(20):
        medium.extend_transmission(tx_id, tx.end_slot + rng.integers(0, 9))
        assert medium.busy_until(1) == reference.busy_until(1) == tx.end_slot
    medium.end_transmission(tx_id)
    reference.end(tx_id)
    assert medium.busy_until(1) is None
