"""Tests for simulation listeners and the detection record types."""

import pytest

from repro.core.records import BackoffObservation, Diagnosis, Verdict
from repro.phy.medium import Transmission
from repro.sim.listeners import SimulationListener, StatsCollector


class TestStatsCollector:
    def _tx(self, sender=0, duration=10):
        return Transmission(
            sender=sender, receiver=1, start_slot=0, end_slot=duration
        )

    def test_counts_starts(self):
        stats = StatsCollector()
        stats.on_transmission_start(0, self._tx(), None)
        stats.on_transmission_start(5, self._tx(sender=2), None)
        assert stats.transmissions == 2
        assert stats.per_sender[0].sent == 1

    def test_counts_outcomes(self):
        stats = StatsCollector()
        tx = self._tx()
        stats.on_transmission_start(0, tx, None)
        stats.on_transmission_end(10, tx, True, None)
        stats.on_transmission_end(20, self._tx(sender=2), False, None)
        assert stats.successes == 1
        assert stats.failures == 1
        assert stats.per_sender[0].delivered == 1
        assert stats.busy_slots_total == 20

    def test_success_ratio(self):
        stats = StatsCollector()
        assert stats.success_ratio == 0.0
        tx = self._tx()
        stats.on_transmission_end(10, tx, True, None)
        assert stats.success_ratio == 1.0

    def test_base_listener_is_noop(self):
        listener = SimulationListener()
        listener.on_transmission_start(0, None, None)
        listener.on_transmission_end(0, None, True, None)
        listener.on_positions_updated(0, {}, None)


class TestVerdict:
    def test_is_malicious(self):
        v = Verdict(diagnosis=Diagnosis.MALICIOUS, slot=5)
        assert v.is_malicious
        assert not Verdict(diagnosis=Diagnosis.WELL_BEHAVED).is_malicious

    def test_insufficient_data(self):
        v = Verdict(diagnosis=Diagnosis.INSUFFICIENT_DATA)
        assert not v.is_malicious

    def test_frozen(self):
        v = Verdict(diagnosis=Diagnosis.MALICIOUS)
        with pytest.raises(AttributeError):
            v.diagnosis = Diagnosis.WELL_BEHAVED


class TestBackoffObservation:
    def test_fields(self):
        o = BackoffObservation(
            slot=100,
            seq_off=3,
            attempt=2,
            dictated=40,
            estimated=35.5,
            idle_slots=30,
            busy_slots=20,
            interval_slots=50,
            rho=0.6,
            unambiguous=False,
        )
        assert o.dictated == 40
        assert o.estimated == 35.5
        assert not o.unambiguous

    def test_frozen(self):
        o = BackoffObservation(
            slot=0, seq_off=0, attempt=1, dictated=1, estimated=1.0,
            idle_slots=1, busy_slots=0, interval_slots=1, rho=0.0,
            unambiguous=True,
        )
        with pytest.raises(AttributeError):
            o.dictated = 2
