"""Unit tests for repro.topology (placement and mobility)."""

import pytest

from repro.geometry.vectors import distance
from repro.topology.mobility import RandomWaypoint, StaticMobility
from repro.topology.placement import (
    center_pair_indices,
    grid_positions,
    random_positions,
)
from repro.util.rng import RngStream


class TestGridPositions:
    def test_paper_grid_size(self):
        assert len(grid_positions()) == 56  # 7 x 8

    def test_spacing(self):
        pts = grid_positions(rows=2, cols=2, spacing=100.0)
        assert pts == [(0, 0), (100, 0), (0, 100), (100, 100)]

    def test_origin_offset(self):
        pts = grid_positions(rows=1, cols=2, spacing=10.0, origin=(5.0, 7.0))
        assert pts == [(5, 7), (15, 7)]

    def test_row_major_order(self):
        pts = grid_positions(rows=2, cols=3, spacing=1.0)
        assert pts[4] == (1.0, 1.0)  # row 1, col 1

    def test_invalid_dims_rejected(self):
        with pytest.raises(ValueError):
            grid_positions(rows=0)


class TestCenterPair:
    def test_paper_grid_center(self):
        sender, monitor = center_pair_indices()
        pts = grid_positions()
        assert distance(pts[sender], pts[monitor]) == pytest.approx(240.0)
        # Both near the grid centroid.
        cx = sum(p[0] for p in pts) / len(pts)
        cy = sum(p[1] for p in pts) / len(pts)
        assert distance(pts[sender], (cx, cy)) < 300

    def test_adjacent(self):
        sender, monitor = center_pair_indices(3, 3)
        assert monitor == sender + 1


class TestRandomPositions:
    def test_count_and_bounds(self):
        pts = random_positions(112, rng=RngStream(1, "place"))
        assert len(pts) == 112
        assert all(0 <= x <= 3000 and 0 <= y <= 3000 for x, y in pts)

    def test_requires_rng(self):
        with pytest.raises(ValueError):
            random_positions(10)

    def test_reproducible(self):
        a = random_positions(10, rng=RngStream(5, "p"))
        b = random_positions(10, rng=RngStream(5, "p"))
        assert a == b


class TestStaticMobility:
    def test_positions_constant(self):
        m = StaticMobility([(0, 0), (1, 1)])
        assert m.positions_at(0.0) == m.positions_at(100.0)

    def test_is_static(self):
        assert StaticMobility([(0, 0)]).is_static

    def test_rejects_negative_time(self):
        with pytest.raises(ValueError):
            StaticMobility([(0, 0)]).positions_at(-1.0)


class TestRandomWaypoint:
    def _model(self, pause=0.0, seed=1):
        initial = [(100.0 * i, 100.0 * i) for i in range(5)]
        return RandomWaypoint(
            initial,
            width=1000.0,
            height=1000.0,
            max_speed=20.0,
            pause_time=pause,
            rng=RngStream(seed, "wp"),
        )

    def test_initial_positions(self):
        m = self._model()
        pos = m.positions_at(0.0)
        assert pos[0] == (0.0, 0.0)
        assert pos[2] == (200.0, 200.0)

    def test_not_static(self):
        assert not self._model().is_static

    def test_nodes_move(self):
        m = self._model()
        p0 = m.positions_at(0.0)
        p1 = m.positions_at(10.0)
        moved = sum(1 for i in p0 if distance(p0[i], p1[i]) > 1.0)
        assert moved >= 4  # speed floor makes a stuck node near-impossible

    def test_positions_stay_in_field(self):
        m = self._model()
        for t in range(0, 300, 10):
            for x, y in m.positions_at(float(t)).values():
                assert 0 <= x <= 1000 and 0 <= y <= 1000

    def test_speed_bounded(self):
        m = self._model()
        prev = m.positions_at(0.0)
        for t in range(1, 50):
            cur = m.positions_at(float(t))
            for i in prev:
                assert distance(prev[i], cur[i]) <= 20.0 + 1e-6
            prev = cur

    def test_pause_time_holds_position(self):
        m = self._model(pause=1000.0, seed=3)
        # After reaching the first waypoint each node pauses for a long
        # time; sample late enough that all nodes have arrived (max
        # travel ~ 1400 m at >= 0.01 m/s is unbounded, so instead check
        # that between two late close samples movement can be zero for
        # paused nodes without violating bounds).
        p1 = m.positions_at(200.0)
        p2 = m.positions_at(200.5)
        # No node may exceed the speed bound; paused nodes move zero.
        for i in p1:
            assert distance(p1[i], p2[i]) <= 10.0 + 1e-6

    def test_requires_rng(self):
        with pytest.raises(ValueError):
            RandomWaypoint([(0, 0)], rng=None)

    def test_speed_order_validated(self):
        with pytest.raises(ValueError):
            RandomWaypoint(
                [(0, 0)], min_speed=10, max_speed=5, rng=RngStream(1, "x")
            )

    def test_reproducible(self):
        a = self._model(seed=9).positions_at(50.0)
        b = self._model(seed=9).positions_at(50.0)
        assert a == b
