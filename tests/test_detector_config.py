"""Tests for detector configuration paths not covered elsewhere."""

import pytest

from repro.core.detector import BackoffMisbehaviorDetector, DetectorConfig
from repro.geometry.regions import RegionModel
from repro.mac.misbehavior import PercentageMisbehavior
from repro.sim.network import Flow, Simulation, SimulationConfig
from repro.topology.placement import center_pair_indices, grid_positions


def _run(config, pm=60, duration_s=8.0, seed=3):
    positions = grid_positions(rows=5, cols=6)
    sender, monitor = center_pair_indices(5, 6)
    flows = [
        Flow(source=i, load=0.6)
        for i in range(len(positions))
        if i != monitor
    ]
    policies = {sender: PercentageMisbehavior(pm)} if pm else {}
    sim = Simulation(
        positions,
        flows=flows,
        policies=policies,
        config=SimulationConfig(seed=seed),
    )
    detector = BackoffMisbehaviorDetector(monitor, sender, config=config)
    sim.add_listener(detector)
    sim.run(duration_s)
    return detector


class TestConfigVariants:
    def test_raw_slot_mode_detects(self):
        """normalize_by_cw=False still catches a strong cheat."""
        detector = _run(
            DetectorConfig(
                sample_size=25, known_n=5, known_k=5, normalize_by_cw=False
            ),
            pm=70,
        )
        assert detector.flagged_malicious

    def test_custom_region_model(self):
        model = RegionModel(separation=240.0, interferer_offset=300.0)
        detector = _run(
            DetectorConfig(sample_size=25, known_n=5, known_k=5,
                           region_model=model),
            pm=70,
        )
        assert detector.state_estimator.region_model is model
        assert detector.flagged_malicious

    def test_test_stride_reduces_evaluations(self):
        frequent = _run(
            DetectorConfig(sample_size=25, known_n=5, known_k=5, test_stride=1),
            pm=0,
            duration_s=6.0,
        )
        sparse = _run(
            DetectorConfig(sample_size=25, known_n=5, known_k=5, test_stride=25),
            pm=0,
            duration_s=6.0,
        )
        stat_frequent = [v for v in frequent.verdicts if not v.deterministic]
        stat_sparse = [v for v in sparse.verdicts if not v.deterministic]
        if stat_frequent and stat_sparse:
            assert len(stat_sparse) < len(stat_frequent)

    def test_zero_warmup_admits_early_samples(self):
        with_warmup = _run(
            DetectorConfig(sample_size=25, known_n=5, known_k=5),
            pm=0,
            duration_s=3.0,
        )
        without = _run(
            DetectorConfig(sample_size=25, known_n=5, known_k=5, warmup_slots=0),
            pm=0,
            duration_s=3.0,
        )
        assert len(without.observations) >= len(with_warmup.observations)

    def test_max_test_attempt_filters_window(self):
        detector = _run(
            DetectorConfig(sample_size=25, known_n=5, known_k=5,
                           max_test_attempt=1),
            pm=0,
            duration_s=6.0,
        )
        # Observations record all attempts; only attempt-1 samples enter
        # the test window, which therefore lags the observation count.
        high_attempts = [o for o in detector.observations if o.attempt > 1]
        if high_attempts:
            assert detector.test.n_samples <= len(detector.observations) - len(
                high_attempts
            ) + detector.test.sample_size

    def test_negative_p_ib_scale_rejected(self):
        from repro.core.sysstate import SystemStateEstimator

        with pytest.raises(ValueError):
            SystemStateEstimator().probabilities(0.5, 5, 5, p_ib_scale=-1.0)
