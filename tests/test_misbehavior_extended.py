"""Tests for the extension misbehavior strategies and the occupancy
correction."""

import pytest

from repro.mac.misbehavior import (
    AdaptiveLoadCheat,
    FixedBackoff,
    IntermittentMisbehavior,
    PercentageMisbehavior,
)
from repro.mac.prng import VerifiableBackoffPrng
from repro.util.rng import RngStream


@pytest.fixture
def prng():
    return VerifiableBackoffPrng(3)


class TestIntermittentMisbehavior:
    def test_probability_zero_is_honest(self, prng):
        policy = IntermittentMisbehavior(
            FixedBackoff(0), 0.0, RngStream(1, "im")
        )
        for offset in range(50):
            assert policy.actual_backoff(prng, offset, 1) == (
                prng.dictated_backoff(offset, 1)
            )
        assert policy.cheated_draws == 0

    def test_probability_one_always_cheats(self, prng):
        policy = IntermittentMisbehavior(
            FixedBackoff(0), 1.0, RngStream(1, "im")
        )
        assert all(policy.actual_backoff(prng, o, 1) == 0 for o in range(50))
        assert policy.honest_draws == 0

    def test_dilution_roughly_matches_probability(self, prng):
        policy = IntermittentMisbehavior(
            FixedBackoff(0), 0.3, RngStream(2, "im")
        )
        for offset in range(2000):
            policy.actual_backoff(prng, offset, 1)
        fraction = policy.cheated_draws / 2000
        assert fraction == pytest.approx(0.3, abs=0.05)

    def test_requires_rng(self):
        with pytest.raises(ValueError):
            IntermittentMisbehavior(FixedBackoff(0), 0.5, None)

    def test_invalid_probability(self):
        with pytest.raises(ValueError):
            IntermittentMisbehavior(FixedBackoff(0), 1.5, RngStream(1, "x"))

    def test_describe(self):
        policy = IntermittentMisbehavior(
            PercentageMisbehavior(50), 0.25, RngStream(1, "x")
        )
        assert "0.25" in policy.describe()
        assert "50" in policy.describe()


class TestAdaptiveLoadCheat:
    def test_cheats_only_above_threshold(self, prng):
        load = {"value": 0.2}
        policy = AdaptiveLoadCheat(
            FixedBackoff(0), lambda: load["value"], threshold=0.5
        )
        assert policy.actual_backoff(prng, 0, 1) == prng.dictated_backoff(0, 1)
        load["value"] = 0.8
        assert policy.actual_backoff(prng, 1, 1) == 0
        assert policy.honest_draws == 1
        assert policy.cheated_draws == 1

    def test_probe_must_be_callable(self):
        with pytest.raises(TypeError):
            AdaptiveLoadCheat(FixedBackoff(0), 0.7)

    def test_describe(self):
        policy = AdaptiveLoadCheat(FixedBackoff(2), lambda: 0.0, threshold=0.4)
        assert "0.4" in policy.describe()


class TestOccupancyCorrection:
    def test_scale_defaults_to_one(self):
        from repro.core.detector import BackoffMisbehaviorDetector, DetectorConfig

        det = BackoffMisbehaviorDetector(1, 0, config=DetectorConfig())
        assert det.p_ib_scale == 1.0

    def test_scale_tracks_measurements(self):
        from repro.core.detector import BackoffMisbehaviorDetector, DetectorConfig

        det = BackoffMisbehaviorDetector(1, 0, config=DetectorConfig())
        baseline = det.state_estimator.region_model.regions.uniform_invisible_fraction
        for _ in range(100):
            det._record_occupancy(invisible=True)
        assert det.p_ib_scale == pytest.approx(1.0 / baseline, rel=0.05)

    def test_disabled_correction_stays_one(self):
        from repro.core.detector import BackoffMisbehaviorDetector, DetectorConfig

        det = BackoffMisbehaviorDetector(
            1, 0, config=DetectorConfig(occupancy_correction=False)
        )
        for _ in range(100):
            det._record_occupancy(invisible=True)
        assert det.p_ib_scale == 1.0

    def test_p_ib_scale_feeds_estimator(self):
        from repro.core.sysstate import SystemStateEstimator

        est = SystemStateEstimator()
        base = est.probabilities(0.8, 5, 5).p_idle_given_busy
        scaled_up = est.probabilities(0.8, 5, 5, p_ib_scale=2.0).p_idle_given_busy
        assert scaled_up == pytest.approx(2.0 * base)

    def test_p_ib_scale_clamped_to_probability(self):
        from repro.core.sysstate import SystemStateEstimator

        est = SystemStateEstimator()
        probs = est.probabilities(0.8, 5, 5, p_ib_scale=1_000.0)
        assert probs.p_idle_given_busy <= 1.0
