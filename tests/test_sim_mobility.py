"""Engine behavior under mobility and load extremes."""

import pytest

from repro.sim.listeners import SimulationListener, StatsCollector
from repro.sim.network import Flow, Simulation, SimulationConfig
from repro.topology.mobility import RandomWaypoint
from repro.topology.placement import grid_positions
from repro.util.rng import RngStream


class _EpochCounter(SimulationListener):
    def __init__(self):
        self.epochs = 0
        self.last_positions = None

    def on_positions_updated(self, slot, positions, medium):
        self.epochs += 1
        self.last_positions = positions


class TestMobilityEpochs:
    def _mobile_sim(self, epoch_interval_s=0.5):
        initial = grid_positions(rows=2, cols=3, spacing=200)
        mobility = RandomWaypoint(
            initial,
            width=800,
            height=600,
            max_speed=20.0,
            rng=RngStream(2, "wp"),
        )
        return Simulation(
            mobility,
            flows=[Flow(source=0, load=0.4)],
            config=SimulationConfig(seed=2, epoch_interval_s=epoch_interval_s),
        )

    def test_epochs_fire_at_interval(self):
        sim = self._mobile_sim(epoch_interval_s=0.5)
        counter = _EpochCounter()
        sim.add_listener(counter)
        sim.run(3.0)
        assert counter.epochs == 6

    def test_positions_change_between_epochs(self):
        sim = self._mobile_sim(epoch_interval_s=1.0)
        counter = _EpochCounter()
        sim.add_listener(counter)
        sim.run(1.1)
        first = counter.last_positions
        sim.run(1.0)
        second = counter.last_positions
        assert first != second

    def test_static_simulation_has_no_epochs(self):
        sim = Simulation(
            grid_positions(rows=2, cols=2),
            flows=[Flow(source=0, load=0.4)],
        )
        counter = _EpochCounter()
        sim.add_listener(counter)
        sim.run(3.0)
        assert counter.epochs == 0

    def test_traffic_survives_topology_changes(self):
        sim = self._mobile_sim()
        stats = StatsCollector()
        sim.add_listener(stats)
        sim.run(5.0)
        assert stats.transmissions > 0


class TestLoadExtremes:
    def test_overload_fills_queue_and_drops(self):
        """Load far beyond capacity: the drop-tail queue must bound
        memory and count drops."""
        positions = grid_positions(rows=1, cols=2)
        sim = Simulation(
            positions,
            flows=[Flow(source=0, destination=1, load=30.0)],
            config=SimulationConfig(seed=4, queue_capacity=10),
        )
        sim.run(2.0)
        mac = sim.macs[0]
        assert len(mac.queue) <= 10
        assert mac.queue.drops > 0
        assert mac.stats.successes > 0

    def test_tiny_load_produces_sparse_traffic(self):
        positions = grid_positions(rows=1, cols=2)
        stats = StatsCollector()
        sim = Simulation(
            positions,
            flows=[Flow(source=0, destination=1, load=0.01)],
        )
        sim.add_listener(stats)
        sim.run(2.0)
        # ~ 0.01 * (100000 slots / ~360 service slots) ~ a couple packets.
        assert 0 <= stats.transmissions < 20

    def test_saturated_channel_utilization(self):
        """Under saturation the channel around a node should be busy
        most of the time."""
        from repro.core.observation import ChannelObserver

        positions = grid_positions()
        flows = [Flow(source=i, load=0.8) for i in range(0, 56)]
        sim = Simulation(positions, flows=flows, config=SimulationConfig(seed=5))
        observer = ChannelObserver(27, 28)
        sim.add_listener(observer)
        sim.run(2.0)
        rho = observer.traffic_intensity(0, sim.engine.now)
        assert rho > 0.5
