"""Integration tests for the full misbehavior detector.

These run real (small) simulations: a sender S monitored by its
receiver R inside a contention neighborhood, exercising the entire
pipeline — observation, ARMA, system-state estimation, deterministic
verifiers, and the rank-sum hypothesis test.
"""

import pytest

from repro.core.detector import BackoffMisbehaviorDetector, DetectorConfig
from repro.core.records import Diagnosis
from repro.mac.misbehavior import (
    AlienDistributionBackoff,
    FixedBackoff,
    PercentageMisbehavior,
)
from repro.sim.network import Flow, Simulation, SimulationConfig
from repro.topology.placement import center_pair_indices, grid_positions
from repro.util.rng import RngStream


def _run_detection(pm=0, policy=None, duration_s=12.0, sample_size=25,
                   load=0.6, seed=3, mac_options=None, config=None):
    positions = grid_positions()
    sender, monitor = center_pair_indices()
    flows = [
        Flow(source=i, load=load)
        for i in range(len(positions))
        if i != monitor
    ]
    policies = {}
    if pm:
        policies[sender] = PercentageMisbehavior(pm)
    if policy is not None:
        policies[sender] = policy
    sim = Simulation(
        positions,
        flows=flows,
        policies=policies,
        config=SimulationConfig(seed=seed),
        mac_options={sender: mac_options} if mac_options else None,
    )
    detector = BackoffMisbehaviorDetector(
        monitor,
        sender,
        config=config
        or DetectorConfig(sample_size=sample_size, known_n=5, known_k=5),
    )
    sim.add_listener(detector)
    sim.run(duration_s)
    return detector


@pytest.fixture(scope="module")
def honest_detector():
    return _run_detection(pm=0)


@pytest.fixture(scope="module")
def cheating_detector():
    return _run_detection(pm=60)


class TestHonestSender:
    def test_no_deterministic_violations(self, honest_detector):
        assert honest_detector.violations == []

    def test_no_statistical_false_alarms(self, honest_detector):
        stat = [v for v in honest_detector.verdicts if not v.deterministic]
        assert stat, "no verdicts produced"
        false_alarms = sum(v.is_malicious for v in stat)
        assert false_alarms / len(stat) < 0.05

    def test_estimates_track_dictated(self, honest_detector):
        obs = honest_detector.observations
        assert len(obs) > 100
        mean_dict = sum(o.dictated for o in obs) / len(obs)
        mean_est = sum(o.estimated for o in obs) / len(obs)
        assert mean_est == pytest.approx(mean_dict, rel=0.25)

    def test_rho_reflects_saturation(self, honest_detector):
        assert 0.4 < honest_detector.rho <= 1.0

    def test_observations_carry_announced_fields(self, honest_detector):
        o = honest_detector.observations[0]
        assert o.attempt >= 1
        assert o.dictated >= 0
        assert o.interval_slots > 0


class TestCheatingSender:
    def test_statistical_detection(self, cheating_detector):
        stat = [v for v in cheating_detector.verdicts if not v.deterministic]
        assert stat
        rate = sum(v.is_malicious for v in stat) / len(stat)
        assert rate > 0.8

    def test_deterministic_catches_too(self, cheating_detector):
        assert any(
            v.kind == "blatant_countdown" for v in cheating_detector.violations
        )

    def test_estimates_fall_below_dictated(self, cheating_detector):
        obs = cheating_detector.observations
        mean_dict = sum(o.dictated for o in obs) / len(obs)
        mean_est = sum(o.estimated for o in obs) / len(obs)
        assert mean_est < 0.7 * mean_dict

    def test_flagged_malicious(self, cheating_detector):
        assert cheating_detector.flagged_malicious
        assert cheating_detector.latest_verdict is not None


class TestOtherAttacks:
    def test_fixed_backoff_detected(self):
        detector = _run_detection(policy=FixedBackoff(2), duration_s=8.0)
        assert detector.flagged_malicious

    def test_alien_distribution_detected(self):
        detector = _run_detection(
            policy=AlienDistributionBackoff(RngStream(9, "alien"), cw=4),
            duration_s=8.0,
        )
        assert detector.flagged_malicious

    def test_attempt_liar_caught_deterministically(self):
        detector = _run_detection(
            mac_options={"announce_attempt_always_one": True},
            duration_s=10.0,
        )
        kinds = {v.kind for v in detector.violations}
        assert "attempt_number" in kinds

    def test_offset_liar_caught_deterministically(self):
        detector = _run_detection(
            mac_options={"announce_stale_offset": True},
            duration_s=10.0,
        )
        kinds = {v.kind for v in detector.violations}
        assert "seq_offset" in kinds


class TestDetectorConfigBehavior:
    def test_density_estimation_path(self):
        """Without known n/k the Bianchi/density pipeline supplies them."""
        detector = _run_detection(
            pm=60,
            duration_s=8.0,
            config=DetectorConfig(sample_size=25),
        )
        assert detector.terminal_estimator.samples > 0
        assert detector.flagged_malicious

    def test_reset_window(self):
        detector = _run_detection(pm=0, duration_s=4.0)
        detector.reset_window()
        assert detector.test.n_samples == 0

    def test_verdict_records_p_value(self):
        detector = _run_detection(pm=60, duration_s=8.0)
        stat = [v for v in detector.verdicts if not v.deterministic]
        assert all(0.0 <= v.p_value <= 1.0 for v in stat)
        assert all(v.sample_size == 25 for v in stat)

    def test_diagnosis_enum(self):
        detector = _run_detection(pm=60, duration_s=8.0)
        assert any(
            v.diagnosis is Diagnosis.MALICIOUS for v in detector.verdicts
        )
