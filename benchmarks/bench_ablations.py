"""Ablations of the design choices called out in DESIGN.md §5.

Each ablation runs the same grid detection scenario while flipping one
design decision, and prints the detection / false-alarm consequences:

- ARMA smoothing factor (paper: alpha = 0.995, claimed insensitive);
- region geometry: calibrated A5 union annulus vs the symmetric
  representative-crescent construction;
- rank-sum vs Welch-style t-test (the paper argues for the
  non-parametric test);
- one-sided vs two-sided alternative;
- n, k sensitivity (the paper: "these parameters do not play a
  significant role");
- deterministic layer on/off (what the verifiable PRS alone buys).
"""

from __future__ import annotations

import math

from repro.core.detector import DetectorConfig
from repro.core.ranksum import rank_sum_test
from repro.experiments.parallel import run_trials
from repro.experiments.runner import (
    collect_detection_samples,
    scaled,
    windowed_detection_rate,
)
from repro.experiments.scenarios import GridScenario
from repro.geometry.regions import RegionModel
from repro.mac.backoff import contention_window
from repro.obs.bench import write_bench_manifest

SAMPLE_SIZE = 25
PM = 50
LOAD = 0.6


def _collect(pm, seed, detector_config=None):
    scenario = GridScenario(load=LOAD, seed=seed)
    return collect_detection_samples(
        scenario,
        pm,
        detector_config=detector_config,
        target_samples=scaled(40) * SAMPLE_SIZE,
        max_duration_s=240.0,
    )


def _collect_trial(task):
    """Picklable (pm, seed, detector_config) task for ``run_trials``."""
    pm, seed, detector_config = task
    return _collect(pm, seed, detector_config)


def _rates(detector):
    hit, _ = windowed_detection_rate(
        detector, SAMPLE_SIZE, include_deterministic=False
    )
    return hit


def bench_ablation_arma_alpha(benchmark):
    """Detection should be insensitive to alpha near 1 (paper claim)."""

    def run():
        alphas = (0.9, 0.995, 0.9995)
        detectors = run_trials(
            _collect_trial,
            [
                (
                    PM,
                    71,
                    DetectorConfig(
                        sample_size=10_000, known_n=5, known_k=5,
                        arma_alpha=alpha,
                    ),
                )
                for alpha in alphas
            ],
        )
        return {
            alpha: _rates(det) for alpha, det in zip(alphas, detectors)
        }

    rates = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    for alpha, rate in rates.items():
        print(f"ablation ARMA alpha={alpha}: detection rate {rate:.3f}")
    write_bench_manifest("ablation_arma_alpha", rates, seed=71)
    values = list(rates.values())
    assert max(values) - min(values) < 0.4, "detection should not hinge on alpha"


def bench_ablation_region_geometry(benchmark):
    """Union-annulus A5 (calibrated) vs symmetric crescent A5.

    The crescent variant overestimates p(I|B) several-fold, inflating
    the estimated back-offs; the honest false-alarm rate stays low for
    both (the test is one-sided) but the cheater's detection rate drops.
    """

    def run():
        variants = (
            ("union", RegionModel()),
            ("crescent", RegionModel(far_interferer_offset=250.0)),
        )
        detectors = run_trials(
            _collect_trial,
            [
                (
                    PM,
                    72,
                    DetectorConfig(
                        sample_size=10_000, known_n=5, known_k=5,
                        region_model=model,
                    ),
                )
                for _label, model in variants
            ],
        )
        return {
            label: _rates(det)
            for (label, _model), det in zip(variants, detectors)
        }

    rates = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    for label, rate in rates.items():
        print(f"ablation A5 geometry={label}: detection rate {rate:.3f}")
    write_bench_manifest("ablation_region_geometry", rates, seed=72)
    assert rates["union"] >= rates["crescent"] - 0.1


def _welch_t_rate(detector, alpha=0.05):
    """Windowed one-sided Welch t-test (the parametric alternative the
    paper rejects)."""
    obs = [
        o
        for o in detector.observations
        if o.attempt <= detector.config.max_test_attempt
    ]
    detected = 0
    windows = 0
    for start in range(0, len(obs) - SAMPLE_SIZE + 1, SAMPLE_SIZE):
        w = obs[start : start + SAMPLE_SIZE]
        x = [o.dictated / (contention_window(o.attempt, 31, 1023) + 1) for o in w]
        y = [o.estimated / (contention_window(o.attempt, 31, 1023) + 1) for o in w]
        from scipy import stats

        t_res = stats.ttest_ind(y, x, equal_var=False, alternative="less")
        detected += 1 if t_res.pvalue < alpha else 0
        windows += 1
    return detected / windows if windows else float("nan")


def bench_ablation_ranksum_vs_ttest(benchmark):
    """Both tests detect; the rank-sum needs no normality assumption and
    the paper's argument is about its distribution-free validity."""

    def run():
        det = _collect(PM, seed=73)
        return _rates(det), _welch_t_rate(det)

    ranksum_rate, ttest_rate = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(f"ablation test statistic: rank-sum {ranksum_rate:.3f}, "
          f"Welch t {ttest_rate:.3f}")
    write_bench_manifest(
        "ablation_ranksum_vs_ttest",
        {"rank_sum": ranksum_rate, "welch_t": ttest_rate},
        seed=73,
    )
    assert ranksum_rate > 0.3


def bench_ablation_alternative(benchmark):
    """One-sided 'less' vs two-sided at the same alpha."""

    def run():
        det = _collect(PM, seed=74)
        one, _ = windowed_detection_rate(
            det, SAMPLE_SIZE, alternative="less", include_deterministic=False
        )
        two, _ = windowed_detection_rate(
            det, SAMPLE_SIZE, alternative="two-sided", include_deterministic=False
        )
        return one, two

    one, two = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(f"ablation alternative: one-sided {one:.3f}, two-sided {two:.3f}")
    write_bench_manifest(
        "ablation_alternative",
        {"one_sided": one, "two_sided": two},
        seed=74,
    )
    assert one >= two - 0.05  # one-sided is at least as powerful here


def bench_ablation_nk_sensitivity(benchmark):
    """The paper found higher n, k change little (the exponent saturates)."""

    def run():
        nk_values = (2, 5, 10)
        detectors = run_trials(
            _collect_trial,
            [
                (PM, 75, DetectorConfig(sample_size=10_000, known_n=nk, known_k=nk))
                for nk in nk_values
            ],
        )
        return {nk: _rates(det) for nk, det in zip(nk_values, detectors)}

    rates = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    for nk, rate in rates.items():
        print(f"ablation n=k={nk}: detection rate {rate:.3f}")
    write_bench_manifest("ablation_nk_sensitivity", rates, seed=75)
    values = list(rates.values())
    assert max(values) - min(values) < 0.4


def bench_ablation_deterministic_layer(benchmark):
    """How much the verifiable-PRS deterministic layer adds on top of
    the statistical test."""

    def run():
        det = _collect(PM, seed=76)
        stat_only, _ = windowed_detection_rate(
            det, SAMPLE_SIZE, include_deterministic=False
        )
        combined, _ = windowed_detection_rate(
            det, SAMPLE_SIZE, include_deterministic=True
        )
        return stat_only, combined, len(det.violations)

    stat_only, combined, violations = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    print()
    print(
        f"ablation deterministic layer: statistical-only {stat_only:.3f}, "
        f"combined {combined:.3f} ({violations} violations)"
    )
    write_bench_manifest(
        "ablation_deterministic_layer",
        {
            "statistical_only": stat_only,
            "combined": combined,
            "violations": violations,
        },
        seed=76,
    )
    assert combined >= stat_only
    assert not math.isnan(combined)
