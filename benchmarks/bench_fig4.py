"""Figure 4: p(B|I) and p(I|B) vs traffic intensity — random, CBR.

Same measurement as Figure 3 on the 112-node random placement with CBR
traffic; the paper reports the same qualitative behavior as the grid.
"""

from __future__ import annotations

from repro.experiments.fig3 import render_points
from repro.experiments.fig4 import run_fig4
from repro.obs.bench import write_bench_manifest


def bench_fig4_probability_curves(benchmark):
    points = benchmark.pedantic(run_fig4, rounds=1, iterations=1)
    print()
    print(render_points("Figure 4: random topology, CBR traffic", points))
    write_bench_manifest("fig4", points)

    usable = [p for p in points if p.rho > 0.05]
    assert len(usable) >= 3
    lo = min(usable, key=lambda p: p.rho)
    hi = max(usable, key=lambda p: p.rho)
    assert hi.sim_p_busy_given_idle > lo.sim_p_busy_given_idle
    assert hi.ana_p_idle_given_busy <= lo.ana_p_idle_given_busy
