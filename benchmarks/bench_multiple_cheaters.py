"""Extension: multiple simultaneous malicious nodes (paper footnote 7).

"Our scheme is capable of detecting multiple malicious nodes (for small
numbers of such nodes)."  Three cheaters in different grid
neighborhoods, each watched by its own monitor, plus one honest control
pair: all cheaters flagged, the honest node not.
"""

from __future__ import annotations

from repro.core.detector import DetectorConfig
from repro.core.observatory import SharedChannelObservatory
from repro.mac.misbehavior import PercentageMisbehavior
from repro.obs.bench import write_bench_manifest
from repro.sim.network import Flow, Simulation, SimulationConfig
from repro.topology.placement import grid_positions


def _run(duration_s=15.0, seed=91):
    positions = grid_positions()
    # (sender, monitor) pairs spread across the grid; sender streams to
    # its monitor.  Node 17/18 is the honest control.
    cheaters = {9: 60, 27: 60, 45: 75}
    pairs = {9: 10, 27: 28, 45: 46, 17: 18}
    flows = [
        Flow(source=i, destination=pairs.get(i), load=0.6)
        for i in range(len(positions))
        if i not in pairs.values()
    ]
    sim = Simulation(
        positions,
        flows=flows,
        policies={s: PercentageMisbehavior(pm) for s, pm in cheaters.items()},
        config=SimulationConfig(seed=seed),
    )
    # All four detectors subscribe through one shared observation plane.
    observatory = SharedChannelObservatory()
    sim.add_listener(observatory)
    detectors = {}
    for sender, monitor in pairs.items():
        detectors[sender] = observatory.attach(
            monitor, sender,
            config=DetectorConfig(sample_size=25, known_n=5, known_k=5),
        )
    sim.run(duration_s)
    return cheaters, detectors


def bench_multiple_cheaters(benchmark):
    cheaters, detectors = benchmark.pedantic(_run, rounds=1, iterations=1)
    print()
    records = []
    for sender, det in sorted(detectors.items()):
        pm = cheaters.get(sender, 0)
        stat = [v for v in det.verdicts if not v.deterministic]
        rate = (
            sum(v.is_malicious for v in stat) / len(stat) if stat else float("nan")
        )
        print(
            f"sender {sender:2d} (PM={pm:3d}): flagged={det.flagged_malicious} "
            f"stat_rate={rate:.2f} violations={len(det.violations)} "
            f"samples={len(det.observations)}"
        )
        records.append({
            "sender": sender,
            "pm": pm,
            "flagged": det.flagged_malicious,
            "stat_rate": rate,
            "violations": len(det.violations),
            "samples": len(det.observations),
        })
    write_bench_manifest("multiple_cheaters", records, seed=91)
    for sender, pm in cheaters.items():
        assert detectors[sender].flagged_malicious, f"cheater {sender} missed"
    honest = detectors[17]
    stat = [v for v in honest.verdicts if not v.deterministic]
    false_rate = (
        sum(v.is_malicious for v in stat) / len(stat) if stat else 0.0
    )
    assert false_rate < 0.1
    assert not honest.violations
