"""Streaming-service capacity: tracked links, resident memory, verdicts.

Two cells price ``repro serve``'s bounded-memory session at the scales
the detection-as-a-service design targets:

* **capacity** — one session ingesting a synthetic honest-traffic
  stream over ``100_000 x REPRO_SCALE`` isolated links (two exchanges
  each, heap-interleaved).  Every link must end up tracked; the cell
  reports end-to-end line throughput, plus the session's resident
  detection state in KB per 10k tracked links from a tracemalloc-traced
  probe session over a fixed 10k-link slice (tracing costs ~5x wall
  time, and per-link state dominates, so the per-10k figure from the
  probe is representative without tracing the full run).  This is the
  scale the observatory's lazy ingest plane exists for: the eager plane
  folds every event into every channel (O(links) per event) and never
  finishes at 10^5 links on one box.
* **verdict** — a small hot set (200 links) carrying deep streams
  (130 exchanges each), pricing the steady-state verdict pipeline:
  rank-sum windows batched at the flush cadence, incremental audit and
  provenance appends, maintenance sweeps.  Reports verdicts and lines
  per second.

Both cells ride ``warmup_slots=0`` (the synthetic generator's exact
``difs + dictated`` gaps make every inter-frame gap an observation) so
the measured work includes the full sample pipeline, not warmup skips.
"""

from __future__ import annotations

import time
import tracemalloc

from repro.core.detector import DetectorConfig
from repro.obs.bench import write_bench_manifest
from repro.serve.capture import synthetic_stream
from repro.serve.server import ServeConfig, ServeSession
from repro.util.fidelity import scaled

SEED = 13
#: Capacity-cell link count at REPRO_SCALE=1 (the acceptance target).
BASE_LINKS = 100_000
CAPACITY_SAMPLES = 2
#: Verdict-cell hot set: fixed size, deep streams.
VERDICT_LINKS = 200
VERDICT_SAMPLES = 130

#: Traced memory-probe size: fixed so the trace overhead stays bounded.
PROBE_LINKS = 10_000

CONFIG = DetectorConfig(sample_size=25, known_n=5, known_k=5, warmup_slots=0)


def _session() -> ServeSession:
    return ServeSession(ServeConfig(detector=CONFIG))


def _capacity_cell() -> dict:
    n_links = scaled(BASE_LINKS, minimum=1_000)
    lines = list(synthetic_stream(n_links, CAPACITY_SAMPLES))

    # Timed run: untraced, end-to-end (parse -> ingest -> verdicts).
    session = _session()
    begin = time.perf_counter()
    result = session.run(lines)
    secs = time.perf_counter() - begin

    # Traced probe: what one session's detection state costs to keep
    # resident, per 10k tracked links.  The stream lines live outside
    # the traced window, so the figure is the session (links, timelines,
    # feeds, logs), not the input buffer.
    probe_links = min(n_links, PROBE_LINKS)
    probe_lines = list(synthetic_stream(probe_links, CAPACITY_SAMPLES))
    tracemalloc.start()
    probe = _session()
    probe_result = probe.run(probe_lines)
    resident_bytes, _peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()

    tracked = len(result.links)
    assert tracked == n_links, f"tracked {tracked} of {n_links} links"
    assert len(probe_result.links) == probe_links
    observations = sum(len(link.observations) for link in result.links)
    assert observations >= n_links  # one per link after the anchor
    return {
        "links": n_links,
        "lines": len(lines),
        "seconds": secs,
        "lines_per_sec": len(lines) / secs if secs > 0 else 0.0,
        "observations": observations,
        "probe_links": probe_links,
        "resident_kb": resident_bytes / 1024.0,
        "resident_kb_per_10k_links": (
            resident_bytes / 1024.0 / (probe_links / 10_000.0)
        ),
    }


def _verdict_cell() -> dict:
    lines = list(synthetic_stream(VERDICT_LINKS, VERDICT_SAMPLES))
    session = _session()
    begin = time.perf_counter()
    result = session.run(lines)
    secs = time.perf_counter() - begin
    verdicts = sum(len(link.verdicts) for link in result.links)
    assert len(result.links) == VERDICT_LINKS
    assert verdicts > 0, "deep streams produced no verdicts"
    return {
        "links": VERDICT_LINKS,
        "lines": len(lines),
        "seconds": secs,
        "lines_per_sec": len(lines) / secs if secs > 0 else 0.0,
        "verdicts": verdicts,
        "verdicts_per_sec": verdicts / secs if secs > 0 else 0.0,
    }


def bench_serve_capacity(benchmark):
    def run():
        return {
            "capacity": _capacity_cell(),
            "verdict": _verdict_cell(),
        }

    cells = benchmark.pedantic(run, rounds=1, iterations=1)
    capacity, verdict = cells["capacity"], cells["verdict"]
    print()
    print(
        f"serve capacity: {capacity['links']:,} links tracked, "
        f"{capacity['lines_per_sec']:>9,.0f} lines/s, "
        f"{capacity['resident_kb_per_10k_links']:,.0f} KB per 10k links"
    )
    print(
        f"serve verdicts: {verdict['links']} links x {VERDICT_SAMPLES} tx, "
        f"{verdict['verdicts_per_sec']:>9,.0f} verdicts/s "
        f"({verdict['verdicts']} verdicts)"
    )
    write_bench_manifest(
        "serve",
        cells,
        seed=SEED,
        config={
            "base_links": BASE_LINKS,
            "capacity_samples": CAPACITY_SAMPLES,
            "verdict_links": VERDICT_LINKS,
            "verdict_samples": VERDICT_SAMPLES,
            "sample_size": CONFIG.sample_size,
        },
    )
    assert capacity["resident_kb_per_10k_links"] > 0.0
