"""Fault injection: detection power and soundness under channel impairment.

Sweeps the monitor-side decode-failure probability from 0 to 0.5 on the
static grid (load 0.6) and, at each intensity, runs paired seeds with an
honest sender and a PM = 60 timer cheat (see
:mod:`repro.experiments.faults_sweep`).

Reproduction/soundness targets:

- **false accusations stay bounded**: the deterministic verifiers never
  fire against the honest sender at any impairment intensity — a
  quarantined observation must not feed them;
- **quarantine is accounted for**: every intensity > 0 quarantines
  observations, and each carries an audit reason code
  (``decode_failure`` here; ``undecodable`` marks the physics-side
  losses that exist even on a clean channel);
- **detection power survives**: the PM = 60 cheat is still caught with
  high probability at 50% decode failure — the sample stream thins, it
  does not bias.

Default fidelity is low; raise REPRO_SCALE for tighter curves.
"""

from __future__ import annotations

import math

from repro.experiments.faults_sweep import (
    DEFAULT_DECODE_SWEEP,
    render_sweep,
    run_fault_sweep,
)
from repro.obs.bench import write_bench_manifest

SEED = 29
PM = 60
LOAD = 0.6
SAMPLE_SIZE = 25


def bench_faults_sweep(benchmark):
    points = benchmark.pedantic(
        lambda: run_fault_sweep(
            decode_probs=DEFAULT_DECODE_SWEEP,
            pm=PM,
            load=LOAD,
            sample_size=SAMPLE_SIZE,
            base_seed=SEED,
        ),
        rounds=1,
        iterations=1,
    )
    print()
    print(render_sweep(points))
    print()
    for p in points:
        reasons = ", ".join(f"{r}={n}" for r, n in p.quarantine_reasons)
        print(
            f"decode={p.decode:.2f}: quarantined "
            f"{p.cheater_quarantined + p.honest_quarantined} ({reasons}); "
            f"honest deterministic violations {p.false_accusations}"
        )
    write_bench_manifest(
        "faults",
        points,
        seed=SEED,
        config={
            "pm": PM,
            "load": LOAD,
            "sample_size": SAMPLE_SIZE,
            "decode_sweep": list(DEFAULT_DECODE_SWEEP),
        },
    )

    by_decode = {p.decode: p for p in points}
    assert set(by_decode) == set(DEFAULT_DECODE_SWEEP)
    for p in points:
        # Soundness: impairment must never manufacture a deterministic
        # accusation against an honest sender.
        assert p.false_accusations == 0, (
            f"honest sender accused at decode={p.decode}: "
            f"{p.false_accusations} deterministic violations"
        )
        # Every quarantined observation carries a reason code; the
        # pooled per-reason counts must account for the full total.
        total_by_reason = sum(n for _reason, n in p.quarantine_reasons)
        assert total_by_reason == p.cheater_quarantined + p.honest_quarantined
        if p.decode > 0:
            reasons = dict(p.quarantine_reasons)
            assert reasons.get("decode_failure", 0) > 0, (
                f"decode={p.decode} produced no decode_failure quarantines"
            )
        # The false-alarm rate of the statistical layer stays bounded
        # (well clear of the detection band; alpha-level noise only).
        if not math.isnan(p.false_alarm_probability):
            assert p.false_alarm_probability <= 0.25, (
                f"false-alarm rate {p.false_alarm_probability} at "
                f"decode={p.decode}"
            )
    # Power: the PM=60 cheat stays caught through heavy impairment.
    worst = by_decode[0.5]
    if not math.isnan(worst.combined_probability):
        assert worst.combined_probability >= 0.8, (
            f"detection collapsed under impairment: "
            f"{worst.combined_probability}"
        )
    # Impairment thins the sample stream: more decode failures must not
    # create more samples than the clean channel collected.
    assert by_decode[0.5].cheater_quarantined > by_decode[0.0].cheater_quarantined
