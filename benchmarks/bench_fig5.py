"""Figure 5: probability of correct diagnosis vs percentage of misbehavior.

Panels (a)-(c): static grid, loads 0.3 / 0.6 / 0.9, sample sizes
{10, 25, 50, 100}.  Panel (d): mobile random-waypoint network, load 0.6.

Two curves are printed per panel: the hypothesis-test rejection rate
(the quantity the paper plots) and the full framework's rate, which
also counts the deterministic verifiers' catches (the paper's
"blatant violation is immediately detected" layer).

Reproduction targets (paper Section 5):
- detection probability increases with PM and with sample size;
- PM = 65 caught with probability > 0.8 even at sample size 10 (load
  0.6) — met by the full framework;
- PM = 25 caught with probability near 1 at sample size 100;
- the mobile scenario converges more slowly (the paper: ~2x samples).

Default fidelity is far below the paper's 10,000 runs; raise
REPRO_SCALE for tighter estimates.
"""

from __future__ import annotations

from repro.experiments.fig5 import (
    DEFAULT_LOADS,
    render_curve,
    run_fig5_mobile,
    run_fig5_static,
)
from repro.obs.bench import write_bench_manifest


def _lookup(points, pm, size, combined=False):
    for p in points:
        if p.pm == pm and p.sample_size == size:
            return p.combined_probability if combined else p.detection_probability
    raise AssertionError(f"missing point pm={pm} size={size}")


def bench_fig5_static_grid(benchmark):
    results = benchmark.pedantic(run_fig5_static, rounds=1, iterations=1)
    print()
    for load in DEFAULT_LOADS:
        print(render_curve(
            f"Figure 5: P(reject H0), load={load}", results[load]
        ))
        print(render_curve(
            f"Figure 5: full framework, load={load}", results[load],
            combined=True,
        ))
        print()
    write_bench_manifest("fig5_static", results)

    mid = results[0.6]
    # Monotone-ish in PM at the largest sample size (allow sampling noise
    # at low fidelity by comparing the extremes).
    assert _lookup(mid, 100, 100) >= _lookup(mid, 25, 100) - 0.05
    # The paper's headline points, met by the full framework.
    assert _lookup(mid, 65, 10, combined=True) > 0.8
    assert _lookup(mid, 65, 100, combined=True) > 0.9
    assert _lookup(mid, 25, 100, combined=True) > 0.5
    # The statistical layer alone carries the bulk at larger windows.
    assert _lookup(mid, 65, 50) > 0.8
    assert _lookup(mid, 50, 100) > 0.9


def bench_fig5_mobile(benchmark):
    points = benchmark.pedantic(run_fig5_mobile, rounds=1, iterations=1)
    print()
    print(render_curve("Figure 5(d): mobile, P(reject H0)", points))
    print(render_curve(
        "Figure 5(d): mobile, full framework", points, combined=True
    ))
    write_bench_manifest("fig5_mobile", points)
    # Mobility degrades but does not break detection at high PM.
    assert _lookup(points, 80, 100, combined=True) > 0.5
