"""Motivation experiment: the attack really does starve neighbors.

The paper's Section 1 claim — back-off timer manipulation grabs a
drastically unfair bandwidth share — measured on the grid: the
cheater's share of its contention neighborhood's deliveries rises with
PM, and Jain's fairness index falls.
"""

from __future__ import annotations

from repro.experiments.fairness import run_starvation_sweep
from repro.experiments.scenarios import GridScenario
from repro.obs.bench import write_bench_manifest


def _factory(seed):
    return GridScenario(load=0.8, seed=seed)


def bench_starvation_sweep(benchmark):
    points = benchmark.pedantic(
        run_starvation_sweep,
        args=(_factory,),
        kwargs={"pm_values": (0, 25, 50, 80, 100)},
        rounds=1,
        iterations=1,
    )
    print()
    print(f"{'PM':>4s} {'cheater share':>14s} {'fair share':>11s} "
          f"{'Jain index':>11s} {'cheater pkts':>13s} {'neighbor mean':>14s}")
    for p in points:
        print(
            f"{p.pm:>4d} {p.cheater_share:>14.3f} {p.fair_share:>11.3f} "
            f"{p.fairness_index:>11.3f} {p.cheater_packets:>13d} "
            f"{p.neighbor_packets_mean:>14.1f}"
        )
    write_bench_manifest("starvation", points)

    honest = points[0]
    worst = points[-1]
    # The cheater's share grows substantially with PM ...
    assert worst.cheater_share > 1.5 * max(honest.cheater_share, 1e-9)
    # ... well past its fair share ...
    assert worst.cheater_share > 1.5 * worst.fair_share
    # ... and overall fairness degrades.
    assert worst.fairness_index < honest.fairness_index
