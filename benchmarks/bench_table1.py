"""Table 1: regenerate the simulation-parameter table and sanity-run it.

The bench prints the paper's Table 1 from the executable config and
times one short simulation of each topology type under those exact
parameters, asserting basic liveness (traffic flows, successes occur).
"""

from __future__ import annotations

from repro.experiments.config import TABLE1
from repro.experiments.scenarios import GridScenario, RandomScenario
from repro.obs.bench import write_bench_manifest
from repro.sim.listeners import StatsCollector


def _stats_record(stats):
    return {
        "transmissions": stats.transmissions,
        "successes": stats.successes,
        "failures": stats.failures,
    }


def _run_scenario(scenario, duration_s=1.0):
    sim, sender, monitor = scenario.build()
    stats = StatsCollector()
    sim.add_listener(stats)
    sim.run(duration_s)
    return stats


def bench_table1_grid(benchmark):
    print()
    print(TABLE1.render())
    stats = benchmark.pedantic(
        _run_scenario, args=(GridScenario(load=0.6, seed=1),), rounds=1, iterations=1
    )
    print(
        f"grid sanity: {stats.transmissions} transmissions, "
        f"{stats.successes} successes, {stats.failures} failures"
    )
    write_bench_manifest("table1_grid", _stats_record(stats), seed=1)
    assert stats.transmissions > 0
    assert stats.successes > 0


def bench_table1_random(benchmark):
    stats = benchmark.pedantic(
        _run_scenario,
        args=(RandomScenario(load=0.6, seed=1),),
        rounds=1,
        iterations=1,
    )
    print(
        f"random sanity: {stats.transmissions} transmissions, "
        f"{stats.successes} successes, {stats.failures} failures"
    )
    write_bench_manifest("table1_random", _stats_record(stats), seed=1)
    assert stats.transmissions > 0
