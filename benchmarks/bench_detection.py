"""Detection-layer throughput: M monitors x C cheaters on one event stream.

The first bench of the detection layer itself.  One dense-monitor grid
simulation is recorded as a raw transmission-event stream, then that
identical stream is replayed into the two detection backends:

* **legacy** — one full :class:`BackoffMisbehaviorDetector` engine
  listener per (monitor, tagged) pair, each maintaining its own busy
  timeline, ARMA feed and competing-terminal estimator;
* **observatory** — one :class:`SharedChannelObservatory` that resolves
  each event once per monitor *node* and demuxes to lightweight
  per-pair subscriptions;
* **batched** — the observatory on ``stats_backend="batched"``: busy
  timelines in numpy :class:`repro.core.batch.IntervalLedger` prefix
  sums, lazily-folded ARMA feeds, and rank-sum windows coalesced across
  detectors into one vectorized kernel call per dispatch flush.

Replaying (rather than timing ``sim.run``) isolates the detection layer
from the engine's slot loop, which ``bench_engine`` already prices; the
timer accumulates ``perf_counter`` around the hook calls only, so
medium bookkeeping (shared by every backend) never dilutes the ratio.
The reported unit is demuxed detection-events per second of
detection-layer time.  All backends consume byte-identical inputs, so
their verdicts, audit records and metrics snapshots must match exactly
— the bench asserts that, mirroring ``tests/test_observatory.py``.

Cells sweep the attach grid (M monitors x C cheaters, up to the full
4 x 4 = 16 detectors); the headline cell asserts the >= 2x shared-plane
speedup and the >= 3x batched-kernel speedup (both over legacy) at 16
attached detectors.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import time

from repro.core.detector import (
    BackoffMisbehaviorDetector,
    DetectorConfig,
    reset_region_cache,
)
from repro.core.observatory import SharedChannelObservatory
from repro.experiments.runner import fidelity_scale
from repro.experiments.scenarios import MultiMonitorGridScenario
from repro.mac.misbehavior import PercentageMisbehavior
from repro.obs.audit import DecisionAuditLog
from repro.obs.bench import write_bench_manifest
from repro.obs.registry import MetricsRegistry
from repro.phy.medium import Medium
from repro.sim.listeners import SimulationListener

SEED = 7
BASE_DURATION_S = 15.0
DETECTOR_CONFIG = DetectorConfig(sample_size=25, known_n=5, known_k=5)
BATCHED_CONFIG = dataclasses.replace(DETECTOR_CONFIG, stats_backend="batched")
#: (M, C) attach-grid cells; the last is the 16-detector headline.
ATTACH_GRID = ((1, 1), (2, 2), (4, 2), (4, 4))
#: Replay backends, in manifest column order.
BACKENDS = ("legacy", "observatory", "batched")
REPS = 3


class _EventRecorder(SimulationListener):
    """Captures the raw transmission-event stream for replay."""

    def __init__(self):
        self.events = []

    def on_transmission_start(self, slot, transmission, medium):
        self.events.append(("start", slot, transmission, False))

    def on_transmission_end(self, slot, transmission, success, medium):
        self.events.append(("end", slot, transmission, success))


def _record_stream():
    """One live dense-monitor run -> (scenario, channel, positions, events)."""
    scenario = MultiMonitorGridScenario(seed=SEED)
    taggeds = scenario.tagged_nodes()
    policies = {
        taggeds[0]: PercentageMisbehavior(60),
        taggeds[2]: PercentageMisbehavior(75),
    }
    sim, _pairs = scenario.build(policies=policies)
    recorder = _EventRecorder()
    sim.add_listener(recorder)
    sim.run(max(BASE_DURATION_S * fidelity_scale(), 1.5))
    return scenario, sim.channel, dict(sim.medium.positions), recorder.events


def _replay(events, channel, positions, start_hooks, end_hooks):
    """Drive a fresh medium through the recorded stream; returns seconds.

    Mirrors the engine's dispatch order: the medium registers a
    transmission before the start hooks fire and drops it before the
    end hooks fire, so carrier-sense and interference queries resolve
    exactly as they do live.  Only the hook calls are timed —
    ``perf_counter`` accumulates around them — so the medium's own
    index bookkeeping, identical for every backend, stays out of the
    measured detection-layer seconds.
    """
    medium = Medium(channel)
    medium.update_positions(positions)
    tx_ids = {}
    elapsed = 0.0
    for kind, slot, tx, success in events:
        if kind == "start":
            tx_ids[id(tx)] = medium.start_transmission(tx)
            begin = time.perf_counter()
            for hook in start_hooks:
                hook(slot, tx, medium)
            elapsed += time.perf_counter() - begin
        else:
            medium.end_transmission(tx_ids.pop(id(tx)))
            begin = time.perf_counter()
            for hook in end_hooks:
                hook(slot, tx, success, medium)
            elapsed += time.perf_counter() - begin
    return elapsed


def _fingerprint(detectors, audit, metrics):
    """SHA-256 over everything the equivalence contract covers."""
    digest = hashlib.sha256()
    for det in detectors:
        for obs in det.observations:
            digest.update(repr(obs).encode())
        for verdict in det.verdicts:
            digest.update(repr(verdict).encode())
    for record in audit.records:
        digest.update(json.dumps(record.to_dict(), sort_keys=True).encode())
    digest.update(json.dumps(metrics.snapshot(), sort_keys=True).encode())
    return digest.hexdigest()


def _run_backend(backend, pairs, separation, channel, positions, events):
    """Best-of-REPS replay of one backend; returns (secs, events, print)."""
    best = float("inf")
    fingerprint = None
    demuxed = 0
    for _rep in range(REPS):
        reset_region_cache()
        audit = DecisionAuditLog()
        metrics = MetricsRegistry()
        if backend == "legacy":
            detectors = [
                BackoffMisbehaviorDetector(
                    monitor, tagged, config=DETECTOR_CONFIG,
                    separation=separation, audit=audit, metrics=metrics,
                )
                for monitor, tagged in pairs
            ]
            start_hooks = [d.on_transmission_start for d in detectors]
            end_hooks = [d.on_transmission_end for d in detectors]
        else:
            config = (
                BATCHED_CONFIG if backend == "batched" else DETECTOR_CONFIG
            )
            observatory = SharedChannelObservatory()
            detectors = [
                observatory.attach(
                    monitor, tagged, config=config,
                    separation=separation, audit=audit, metrics=metrics,
                )
                for monitor, tagged in pairs
            ]
            start_hooks = [observatory.on_transmission_start]
            end_hooks = [observatory.on_transmission_end]
        elapsed = _replay(events, channel, positions, start_hooks, end_hooks)
        best = min(best, elapsed)
        demuxed = sum(len(d.observer.observed) for d in detectors)
        fingerprint = _fingerprint(detectors, audit, metrics)
    return best, demuxed, fingerprint


def bench_detection_throughput(benchmark):
    def run():
        scenario, channel, positions, events = _record_stream()
        monitors = scenario.monitor_nodes()
        taggeds = scenario.tagged_nodes()
        cells = {"stream_events": len(events)}
        for n_monitors, n_tagged in ATTACH_GRID:
            pairs = [
                (monitor, tagged)
                for monitor in monitors[:n_monitors]
                for tagged in taggeds[:n_tagged]
            ]
            label = f"m{n_monitors}x{n_tagged}"
            cell = {"detectors": len(pairs)}
            fingerprints = {}
            for backend in BACKENDS:
                secs, demuxed, fingerprints[backend] = _run_backend(
                    backend, pairs, scenario.separation,
                    channel, positions, events,
                )
                cell[f"{backend}_seconds"] = secs
                cell[f"{backend}_events_per_sec"] = (
                    demuxed / secs if secs > 0 else 0.0
                )
                cell["detection_events"] = demuxed
            cell["speedup"] = (
                cell["legacy_seconds"] / cell["observatory_seconds"]
                if cell["observatory_seconds"] > 0
                else float("inf")
            )
            cell["batched_speedup"] = (
                cell["legacy_seconds"] / cell["batched_seconds"]
                if cell["batched_seconds"] > 0
                else float("inf")
            )
            cell["fingerprints_equal"] = (
                len(set(fingerprints.values())) == 1
            )
            cells[label] = cell
        return cells

    cells = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    for n_monitors, n_tagged in ATTACH_GRID:
        cell = cells[f"m{n_monitors}x{n_tagged}"]
        print(
            f"detection {n_monitors}x{n_tagged} ({cell['detectors']:2d} det): "
            f"legacy {cell['legacy_events_per_sec']:>9,.0f} ev/s, "
            f"observatory {cell['observatory_events_per_sec']:>9,.0f} ev/s "
            f"({cell['speedup']:.2f}x), "
            f"batched {cell['batched_events_per_sec']:>9,.0f} ev/s "
            f"({cell['batched_speedup']:.2f}x)"
        )
    write_bench_manifest(
        "detection",
        cells,
        seed=SEED,
        config={
            "base_duration_s": BASE_DURATION_S,
            "attach_grid": [list(cell) for cell in ATTACH_GRID],
            "sample_size": DETECTOR_CONFIG.sample_size,
            "backends": list(BACKENDS),
        },
    )

    # All backends must produce byte-identical detection artifacts from
    # the identical replayed stream — at every grid cell.
    for n_monitors, n_tagged in ATTACH_GRID:
        assert cells[f"m{n_monitors}x{n_tagged}"]["fingerprints_equal"], (
            f"backend fingerprints diverged at {n_monitors}x{n_tagged}"
        )
    headline = cells["m4x4"]
    assert headline["detectors"] == 16
    assert headline["detection_events"] > 0
    # The shared observation plane's reason to exist: >= 2x detection
    # event throughput at 16 attached detectors.
    assert headline["speedup"] >= 2.0, (
        f"expected >= 2x at 16 detectors, measured {headline['speedup']:.2f}x"
    )
    # And the batched kernel's: >= 3x over the legacy scalar path.
    assert headline["batched_speedup"] >= 3.0, (
        f"expected >= 3x batched at 16 detectors, "
        f"measured {headline['batched_speedup']:.2f}x"
    )
