"""Rank-sum kernel microbench: vectorized batch vs the scalar loop.

Times :func:`repro.core.batch.rank_sum_many` on one large batch of
windows shaped like real detector traffic — 25-pair windows mixing
heavy-tie integer backoffs (normal-approximation path) with continuous
values (exact-null path for tie-free windows) — against the equivalent
python loop over :func:`repro.core.ranksum.rank_sum_test`.

The kernel's contract is bit-identity, so the bench first asserts the
two paths return equal results on the full batch, then prices them.
The batch size scales with REPRO_SCALE; the speedup assertion runs at
every scale (the ratio is scale-stable because both paths grow
linearly in the batch).
"""

from __future__ import annotations

import random
import time

from repro.core.batch import rank_sum_many
from repro.core.ranksum import rank_sum_test
from repro.experiments.runner import fidelity_scale
from repro.obs.bench import write_bench_manifest

SEED = 11
WINDOW = 25
BASE_BATCH = 4096
ALTERNATIVE = "less"
ROUNDS = 5


def _make_windows(batch):
    """Deterministic windows mixing tied and continuous regimes."""
    rng = random.Random(SEED)
    xs, ys = [], []
    for i in range(batch):
        if i % 2:
            x = [float(rng.randint(0, 31)) for _ in range(WINDOW)]
            y = [float(rng.randint(0, 24)) for _ in range(WINDOW)]
        else:
            x = [rng.uniform(0.0, 31.0) for _ in range(WINDOW)]
            y = [rng.uniform(0.0, 24.0) for _ in range(WINDOW)]
        xs.append(x)
        ys.append(y)
    return xs, ys


def bench_ranksum_kernel(benchmark):
    batch = max(int(BASE_BATCH * fidelity_scale()), 64)
    xs, ys = _make_windows(batch)

    batched = benchmark.pedantic(
        lambda: rank_sum_many(xs, ys, ALTERNATIVE),
        rounds=ROUNDS,
        iterations=1,
    )

    begin = time.perf_counter()
    scalar = [
        rank_sum_test(x, y, ALTERNATIVE) for x, y in zip(xs, ys)
    ]
    scalar_seconds = time.perf_counter() - begin

    # Bit-identity before throughput: every statistic, p-value and
    # method tag must match the scalar reference exactly.
    assert batched == scalar

    batched_seconds = min(benchmark.stats.stats.data)
    speedup = scalar_seconds / batched_seconds
    results = {
        "batch": batch,
        "window": WINDOW,
        "batched_seconds": batched_seconds,
        "batched_windows_per_sec": batch / batched_seconds,
        "scalar_seconds": scalar_seconds,
        "scalar_windows_per_sec": batch / scalar_seconds,
        "speedup": speedup,
    }
    print()
    print(
        f"rank-sum kernel ({batch} windows x {WINDOW} pairs): "
        f"scalar {results['scalar_windows_per_sec']:>10,.0f} win/s, "
        f"batched {results['batched_windows_per_sec']:>10,.0f} win/s "
        f"({speedup:.2f}x)"
    )
    write_bench_manifest(
        "ranksum",
        results,
        seed=SEED,
        config={
            "window": WINDOW,
            "base_batch": BASE_BATCH,
            "alternative": ALTERNATIVE,
            "rounds": ROUNDS,
        },
    )

    # The kernel's reason to exist: a healthy multiple over the python
    # loop on any realistically sized batch.  (Measures ~3.2-3.5x; the
    # guard leaves headroom for noisy CI runners — the headline >= 3x
    # criterion is bench_detection's end-to-end events/sec.)
    assert speedup >= 2.5, (
        f"expected >= 2.5x over the scalar loop, measured {speedup:.2f}x"
    )
