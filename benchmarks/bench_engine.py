"""Bare-engine throughput: slots per second on the two paper topologies.

The perf baseline every optimization PR measures against.  Four cells:
{56-node grid, 112-node random} x {bare, with the metrics listener} —
the listener cell prices the observability overhead.  No detector is
attached; this measures the slot loop itself (event heap, carrier
sensing, back-off reconciliation).

Wall-clock numbers vary with the host, so the assertions only require
sane, non-degenerate throughput; the measured values land in
``BENCH_engine.json`` where the trajectory across PRs is tracked.
"""

from __future__ import annotations

from repro.experiments.runner import scaled
from repro.experiments.scenarios import GridScenario, RandomScenario
from repro.obs.bench import write_bench_manifest
from repro.obs.listener import MetricsListener
from repro.obs.profile import Stopwatch
from repro.obs.registry import MetricsRegistry

SEED = 7
LOAD = 0.6


def _throughput(scenario, slots, with_metrics):
    """Best-of-3 slots/sec for one scenario build (fresh sim per rep)."""
    best = 0.0
    for _rep in range(3):
        sim, _sender, _monitor = scenario.build()
        if with_metrics:
            sim.add_listener(MetricsListener(MetricsRegistry()))
        watch = Stopwatch()
        sim.run_slots(slots)
        elapsed = watch.stop()
        best = max(best, slots / elapsed if elapsed > 0 else 0.0)
    return best


def bench_engine_slot_throughput(benchmark):
    slots = scaled(20_000, minimum=2_000)

    def run():
        cells = {}
        for label, scenario in (
            ("grid56", GridScenario(load=LOAD, seed=SEED)),
            ("random112", RandomScenario(load=LOAD, seed=SEED)),
        ):
            cells[f"{label}_slots_per_sec"] = _throughput(
                scenario, slots, with_metrics=False
            )
            cells[f"{label}_metrics_slots_per_sec"] = _throughput(
                scenario, slots, with_metrics=True
            )
        cells["slots"] = slots
        return cells

    cells = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    for label in ("grid56", "random112"):
        bare = cells[f"{label}_slots_per_sec"]
        metered = cells[f"{label}_metrics_slots_per_sec"]
        overhead = (bare / metered - 1.0) * 100 if metered else float("inf")
        print(
            f"engine {label}: {bare:,.0f} slots/s bare, "
            f"{metered:,.0f} with metrics ({overhead:+.1f}% overhead)"
        )
    write_bench_manifest(
        "engine", cells, seed=SEED, config={"load": LOAD, "slots": slots}
    )

    # Non-degenerate throughput on any plausible host; the real numbers
    # are tracked via the manifest, not asserted.
    assert cells["grid56_slots_per_sec"] > 1_000
    assert cells["random112_slots_per_sec"] > 1_000
    # The metrics listener must stay cheap enough to leave on.
    assert (
        cells["random112_metrics_slots_per_sec"]
        > cells["random112_slots_per_sec"] * 0.2
    )
