"""Bare-engine throughput: slots per second, small and large topologies.

The perf baseline every optimization PR measures against.  Cells:

- {56-node grid, 112-node random} x {bare, with the metrics listener}
  — the listener cell prices the observability overhead;
- the 1,000-node random-waypoint scenario on the spatial grid index
  vs the all-pairs reference, with a gated speedup ratio;
- the 10,000-node scenario (grid-only; all-pairs would take minutes
  per mobility epoch), proving full-fidelity scale completes.

No detector is attached; this measures the slot loop itself (event
heap, carrier sensing, back-off reconciliation, epoch reachability).

Wall-clock numbers vary with the host, so the assertions only require
sane, non-degenerate throughput — plus the one structural gate that
must hold on any host, the grid-vs-brute speedup at 1k nodes; the
measured values land in ``BENCH_engine.json`` where the trajectory
across PRs is tracked.
"""

from __future__ import annotations

from repro.experiments.runner import scaled
from repro.experiments.scenarios import (
    GridScenario,
    RandomScenario,
    RandomWaypointScenario,
)
from repro.obs.bench import write_bench_manifest
from repro.obs.listener import MetricsListener
from repro.obs.profile import Stopwatch
from repro.obs.registry import MetricsRegistry

SEED = 7
LOAD = 0.6

#: The 1k-node cell samples mobility epochs densely (one per 2,500
#: slots) so the measured span exercises the epoch path the spatial
#: index optimizes, not just the slot loop between epochs.
RW_EPOCH_INTERVAL_S = 0.05


def _throughput(scenario, slots, with_metrics):
    """Best-of-3 slots/sec for one scenario build (fresh sim per rep)."""
    best = 0.0
    for _rep in range(3):
        sim, _sender, _monitor = scenario.build()
        if with_metrics:
            sim.add_listener(MetricsListener(MetricsRegistry()))
        watch = Stopwatch()
        sim.run_slots(slots)
        elapsed = watch.stop()
        best = max(best, slots / elapsed if elapsed > 0 else 0.0)
    return best


def _waypoint_throughput(scenario, slots, reps=2):
    """Best-of-``reps`` slots/sec for a large waypoint scenario.

    Unlike :func:`_throughput`, the timed span *includes* the scenario
    build: the initial ``update_positions`` is exactly one mobility
    epoch's reachability cost, which is the O(n²)-vs-O(n) path the
    spatial index exists for.  Excluding it would let a reduced
    ``REPRO_SCALE`` run (too few slots to cross an epoch) measure no
    epochs at all.
    """
    best = 0.0
    for _rep in range(reps):
        watch = Stopwatch()
        sim, _sender, _monitor = scenario.build()
        sim.run_slots(slots)
        elapsed = watch.stop()
        best = max(best, slots / elapsed if elapsed > 0 else 0.0)
    return best


def _paper_topology_cells(slots):
    cells = {}
    for label, scenario in (
        ("grid56", GridScenario(load=LOAD, seed=SEED)),
        ("random112", RandomScenario(load=LOAD, seed=SEED)),
    ):
        cells[f"{label}_slots_per_sec"] = _throughput(
            scenario, slots, with_metrics=False
        )
        cells[f"{label}_metrics_slots_per_sec"] = _throughput(
            scenario, slots, with_metrics=True
        )
    return cells


def _large_topology_cells(slots_1k, slots_10k):
    """1k grid-vs-brute speedup and 10k completion.

    Node counts are *not* scaled down by ``REPRO_SCALE``: these cells
    exist to pin behavior at size, so only the measured slot span
    shrinks.
    """
    cells = {}
    for label, index in (("rw1k_grid", "grid"), ("rw1k_brute", "brute")):
        scenario = RandomWaypointScenario(
            n_nodes=1_000,
            seed=SEED,
            epoch_interval_s=RW_EPOCH_INTERVAL_S,
            medium_index=index,
        )
        cells[f"{label}_slots_per_sec"] = _waypoint_throughput(scenario, slots_1k)
    cells["rw1k_speedup"] = (
        cells["rw1k_grid_slots_per_sec"] / cells["rw1k_brute_slots_per_sec"]
    )
    cells["rw10k_slots_per_sec"] = _waypoint_throughput(
        RandomWaypointScenario(n_nodes=10_000, seed=SEED), slots_10k, reps=1
    )
    return cells


def bench_engine_slot_throughput(benchmark):
    slots = scaled(20_000, minimum=2_000)
    slots_1k = scaled(12_000, minimum=1_200)
    slots_10k = scaled(2_000, minimum=200)

    def run():
        cells = _paper_topology_cells(slots)
        cells.update(_large_topology_cells(slots_1k, slots_10k))
        cells["slots"] = slots
        cells["rw1k_slots"] = slots_1k
        cells["rw10k_slots"] = slots_10k
        return cells

    cells = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    for label in ("grid56", "random112"):
        bare = cells[f"{label}_slots_per_sec"]
        metered = cells[f"{label}_metrics_slots_per_sec"]
        overhead = (bare / metered - 1.0) * 100 if metered else float("inf")
        print(
            f"engine {label}: {bare:,.0f} slots/s bare, "
            f"{metered:,.0f} with metrics ({overhead:+.1f}% overhead)"
        )
    print(
        f"engine rw1k: {cells['rw1k_grid_slots_per_sec']:,.0f} slots/s grid, "
        f"{cells['rw1k_brute_slots_per_sec']:,.0f} all-pairs "
        f"({cells['rw1k_speedup']:.1f}x)"
    )
    print(f"engine rw10k: {cells['rw10k_slots_per_sec']:,.0f} slots/s grid")
    write_bench_manifest(
        "engine",
        cells,
        seed=SEED,
        config={
            "load": LOAD,
            "slots": slots,
            "epoch_interval_s": RW_EPOCH_INTERVAL_S,
            "slots_1k": slots_1k,
            "slots_10k": slots_10k,
        },
    )

    # Non-degenerate throughput on any plausible host; the real numbers
    # are tracked via the manifest, not asserted.
    assert cells["grid56_slots_per_sec"] > 1_000
    assert cells["random112_slots_per_sec"] > 1_000
    # The metrics listener must stay cheap enough to leave on.
    assert (
        cells["random112_metrics_slots_per_sec"]
        > cells["random112_slots_per_sec"] * 0.2
    )
    # The spatial index must beat the all-pairs scan decisively at
    # 1,000 nodes (CI re-asserts this from the manifest), and the
    # 10,000-node topology must complete with non-degenerate progress.
    assert cells["rw1k_speedup"] >= 5.0
    assert cells["rw10k_slots_per_sec"] > 0
