"""Figure 3: p(B|I) and p(I|B) vs traffic intensity — grid, Poisson.

Reproduction target (shape): p(S busy | R idle) increases with traffic
intensity; p(S idle | R busy) decreases; the analytical curves (paper
eqs. 3-5) track the simulation within the paper's own level of
agreement.  Absolute values depend on the substrate; EXPERIMENTS.md
records paper-vs-measured.
"""

from __future__ import annotations

from repro.experiments.fig3 import render_points, run_fig3
from repro.obs.bench import write_bench_manifest


def bench_fig3_probability_curves(benchmark):
    points = benchmark.pedantic(run_fig3, rounds=1, iterations=1)
    print()
    print(render_points("Figure 3: grid topology, Poisson traffic", points))
    write_bench_manifest("fig3", points)

    usable = [p for p in points if p.rho > 0.05]
    assert len(usable) >= 3

    # Shape assertions: p(B|I) rises with intensity, p(I|B) falls.
    lo = min(usable, key=lambda p: p.rho)
    hi = max(usable, key=lambda p: p.rho)
    assert hi.sim_p_busy_given_idle > lo.sim_p_busy_given_idle
    assert hi.ana_p_busy_given_idle >= lo.ana_p_busy_given_idle
    assert hi.ana_p_idle_given_busy <= lo.ana_p_idle_given_busy
