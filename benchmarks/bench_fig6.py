"""Figure 6: probability of misdiagnosis (false alarms) vs sample size.

All nodes honest; every "malicious" diagnosis is a false alarm.  The
paper reports the maximum misdiagnosis just under 0.01 at sample size
10, decreasing with the window, and below 0.002 at sample size >= 50 in
the mobile case.  At default fidelity the window count limits the
resolution of very small probabilities; the assertion bounds the rate
rather than pinning it.
"""

from __future__ import annotations

from repro.experiments.fig6 import (
    DEFAULT_LOADS,
    render_curves,
    run_fig6_mobile,
    run_fig6_static,
)
from repro.obs.bench import write_bench_manifest


def bench_fig6_static_grid(benchmark):
    curves = benchmark.pedantic(run_fig6_static, rounds=1, iterations=1)
    print()
    print(render_curves("Figure 6(a): P(misdiagnosis), static grid", curves))
    write_bench_manifest("fig6_static", curves)
    for load, points in curves.items():
        for p in points:
            assert p.misdiagnosis_probability <= 0.1, (
                f"false-alarm rate {p.misdiagnosis_probability} at "
                f"load={load}, sample size={p.sample_size}"
            )
    # The large-window false-alarm rate should be essentially zero.
    for load, points in curves.items():
        largest = max(points, key=lambda p: p.sample_size)
        assert largest.misdiagnosis_probability <= 0.05


def bench_fig6_mobile(benchmark):
    points = benchmark.pedantic(run_fig6_mobile, rounds=1, iterations=1)
    print()
    print(render_curves("Figure 6(b): P(misdiagnosis), mobile", {0.6: points}))
    write_bench_manifest("fig6_mobile", points)
    for p in points:
        assert p.misdiagnosis_probability <= 0.1
