"""Extension experiment: detection latency vs misbehavior intensity.

The paper discusses the quickness/accuracy trade-off qualitatively
("there is a trade-off between the quickness of detection and the
accuracy"); this bench quantifies it: wall-clock (simulated seconds) and
sample count until the framework first flags the cheater, per PM level.
Blatant cheats should be caught in under a second of air time; subtle
ones take a window's worth of samples.
"""

from __future__ import annotations

from repro.analysis.latency import detection_latency
from repro.core.detector import DetectorConfig
from repro.experiments.parallel import run_trials
from repro.experiments.runner import collect_detection_samples, scaled
from repro.experiments.scenarios import GridScenario
from repro.obs.bench import write_bench_manifest


def _latency_for(pm, seed, sample_size=25):
    scenario = GridScenario(load=0.6, seed=seed)
    detector = collect_detection_samples(
        scenario,
        pm,
        detector_config=DetectorConfig(
            sample_size=sample_size, known_n=5, known_k=5
        ),
        target_samples=scaled(250),
        max_duration_s=120.0,
    )
    return detection_latency(detector)


def _latency_trial(task):
    pm, seed = task
    return _latency_for(pm, seed)


def bench_detection_latency(benchmark):
    def run():
        pm_levels = (25, 50, 80)
        latencies = run_trials(
            _latency_trial, [(pm, 81 + pm) for pm in pm_levels]
        )
        return dict(zip(pm_levels, latencies))

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(f"{'PM':>4s} {'flagged':>8s} {'seconds':>9s} {'samples':>8s} {'layer':>14s}")
    for pm, latency in results.items():
        layer = (
            "deterministic" if latency.deterministic_first else "statistical"
        )
        seconds = (
            f"{latency.first_flag_seconds:9.2f}" if latency.flagged else "      inf"
        )
        print(
            f"{pm:>4d} {str(latency.flagged):>8s} {seconds} "
            f"{latency.samples_at_flag:>8d} {layer:>14s}"
        )
    write_bench_manifest("latency", results)

    assert all(lat.flagged for lat in results.values())
    # Stronger misbehavior is caught at least as fast (allow slack for
    # the Monte-Carlo noise of single runs).
    assert (
        results[80].first_flag_seconds
        <= results[25].first_flag_seconds * 2.0 + 1.0
    )
