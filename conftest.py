"""Root pytest configuration.

The benchmark modules print the reproduced paper tables/figures to
stdout — that output *is* the experiment artifact.  For benchmark-only
runs the captured output of passing benches is included in the terminal
summary (equivalent to passing ``-rP``), so
``pytest benchmarks/ --benchmark-only | tee bench_output.txt`` records
the tables without extra flags.
"""


def pytest_configure(config):
    if config.getoption("benchmark_only", default=False):
        existing = config.option.reportchars or ""
        if "P" not in existing:
            config.option.reportchars = existing + "P"
