"""Root pytest configuration.

The benchmark modules print the reproduced paper tables/figures to
stdout — that output *is* the experiment artifact.  For benchmark-only
runs the captured output of passing benches is included in the terminal
summary (equivalent to passing ``-rP``), so
``pytest benchmarks/ --benchmark-only | tee bench_output.txt`` records
the tables without extra flags.

``--update-golden`` regenerates the golden fingerprints pinned by
``tests/test_golden_fingerprints.py`` (see that module's docstring).
"""

import pytest


def pytest_addoption(parser):
    parser.addoption(
        "--update-golden",
        action="store_true",
        default=False,
        help="regenerate tests/golden/*.json fingerprints instead of "
        "asserting against them",
    )


@pytest.fixture(autouse=True)
def _reset_registered_caches():
    """Rewind every registered module-level cache before each test.

    Caches like ``cached_region_model`` and the ``REPRO_SCALE`` parse
    are process-global; without this, a test's observable behavior can
    depend on which tests ran before it (the shared-state footgun).
    Every module-level cache must register a reset hook with
    ``repro.util.caches.register_cache_reset`` — lint rule RPR401
    enforces that.
    """
    from repro.util.caches import reset_all_caches

    reset_all_caches()
    yield


def pytest_configure(config):
    if config.getoption("benchmark_only", default=False):
        existing = config.option.reportchars or ""
        if "P" not in existing:
            config.option.reportchars = existing + "P"
