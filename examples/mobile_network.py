"""Detection under mobility: the paper's random-waypoint scenario.

112 nodes move through a 3000 m x 3000 m field at 0-20 m/s (random
waypoint, Table 1).  The monitor keeps observing its tagged neighbor
while topology — and therefore the interference structure — shifts
around them.  The paper found that mobility roughly doubles the number
of samples needed for the same confidence; this example shows the
detector still converging on a PM = 60 cheater.

Run:  python examples/mobile_network.py
"""

from repro.core.detector import BackoffMisbehaviorDetector, DetectorConfig
from repro.experiments.scenarios import RandomScenario
from repro.mac.misbehavior import PercentageMisbehavior


def run(pm, seed=9):
    scenario = RandomScenario(load=0.6, mobile=True, seed=seed)
    _sim, sender, _monitor = scenario.build()
    sim, sender, monitor = scenario.build(
        policies={sender: PercentageMisbehavior(pm)} if pm else None
    )
    detector = BackoffMisbehaviorDetector(
        monitor,
        sender,
        config=DetectorConfig(sample_size=25),
        separation=scenario.separation,
    )
    sim.add_listener(detector)
    sim.run(60.0, stop_condition=lambda: len(detector.observations) >= 120)
    return detector


def main():
    for pm in (0, 60):
        detector = run(pm)
        stat = [v for v in detector.verdicts if not v.deterministic]
        rate = (
            sum(v.is_malicious for v in stat) / len(stat) if stat else float("nan")
        )
        print(
            f"PM={pm:3d}: {len(detector.observations):4d} samples, "
            f"window reject rate {rate:.2f}, "
            f"{len(detector.violations)} deterministic catches, "
            f"rho={detector.rho:.2f}"
        )
    print()
    print("The honest run stays near 0; the cheater is rejected in most")
    print("windows despite node movement (compare Figure 5(d)).")


if __name__ == "__main__":
    main()
