"""Compare attack strategies against the detection framework.

The paper's PM attack shrinks every dictated back-off, but the intro
describes other shapes: a small constant back-off, refusing to double
the contention window on retransmission, and drawing from a private
distribution.  This example runs each strategy through the same grid
scenario and reports how the framework catches it — statistically, via
the deterministic verifiers, or both.

Run:  python examples/misbehavior_strategies.py
"""

from repro import (
    AlienDistributionBackoff,
    FixedBackoff,
    HonestBackoff,
    NoExponentialBackoff,
    PercentageMisbehavior,
    RngStream,
)
from repro.core.detector import BackoffMisbehaviorDetector, DetectorConfig
from repro.experiments.scenarios import GridScenario


def evaluate(policy, seed):
    scenario = GridScenario(load=0.6, seed=seed)
    # First build discovers which node is the monitored sender, the
    # second installs the strategy on it.
    _sim, sender, _monitor = scenario.build()
    sim, sender, monitor = scenario.build(policies={sender: policy})
    detector = BackoffMisbehaviorDetector(
        monitor,
        sender,
        config=DetectorConfig(sample_size=25, known_n=5, known_k=5),
    )
    sim.add_listener(detector)
    sim.run(
        30.0,
        stop_condition=lambda: len(detector.observations) >= 150,
    )
    stat = [v for v in detector.verdicts if not v.deterministic]
    stat_rate = (
        sum(v.is_malicious for v in stat) / len(stat) if stat else float("nan")
    )
    return stat_rate, len(detector.violations), len(detector.observations)


def main():
    strategies = [
        ("honest (baseline)", HonestBackoff()),
        ("PM=50 timer cheat", PercentageMisbehavior(50)),
        ("fixed back-off of 2", FixedBackoff(2)),
        ("no exponential back-off", NoExponentialBackoff()),
        ("private uniform [0,4]", AlienDistributionBackoff(RngStream(7, "alien"), cw=4)),
    ]
    print(f"{'strategy':28s} {'stat rate':>10s} {'violations':>11s} {'samples':>8s}")
    print("-" * 62)
    for name, policy in strategies:
        stat_rate, violations, samples = evaluate(policy, seed=55)
        print(f"{name:28s} {stat_rate:>10.2f} {violations:>11d} {samples:>8d}")
    print()
    print("The honest baseline shows ~0 everywhere; every attack shape is")
    print("flagged by the statistical test, the deterministic verifiers,")
    print("or both.")


if __name__ == "__main__":
    main()
