"""Quickstart: catch a back-off cheater in the paper's grid network.

Builds the 7x8 grid of the paper, makes the central sender S cheat on
its back-off timers (PM = 60: it counts only 40% of each dictated
back-off), attaches the detection framework at its receiver R, and runs
a few simulated seconds.

Run:  python examples/quickstart.py
"""

from repro import (
    BackoffMisbehaviorDetector,
    DetectorConfig,
    Flow,
    PercentageMisbehavior,
    Simulation,
    SimulationConfig,
    center_pair_indices,
    grid_positions,
)


def main():
    positions = grid_positions()                    # 7x8, 240 m spacing
    sender, monitor = center_pair_indices()        # adjacent central pair

    # Every node except the monitor offers Poisson traffic; the tagged
    # sender streams to the monitor, everyone else to a random neighbor.
    flows = [
        Flow(source=i, destination=monitor if i == sender else None, load=0.6)
        for i in range(len(positions))
        if i != monitor
    ]

    sim = Simulation(
        positions,
        flows=flows,
        policies={sender: PercentageMisbehavior(pm=60)},
        config=SimulationConfig(seed=42),
    )

    detector = BackoffMisbehaviorDetector(
        monitor,
        sender,
        config=DetectorConfig(sample_size=25, known_n=5, known_k=5),
    )
    sim.add_listener(detector)

    print(f"monitoring node {sender} from node {monitor} ...")
    sim.run(duration_s=6.0)

    observations = detector.observations
    mean_dictated = sum(o.dictated for o in observations) / len(observations)
    mean_estimated = sum(o.estimated for o in observations) / len(observations)
    print(f"collected {len(observations)} back-off samples")
    print(f"mean dictated back-off : {mean_dictated:6.1f} slots")
    print(f"mean estimated back-off: {mean_estimated:6.1f} slots")
    print(f"traffic intensity (ARMA): {detector.rho:.2f}")
    print(f"deterministic violations: {len(detector.violations)}")

    verdict = detector.latest_verdict
    print(f"verdict: {verdict.diagnosis.value} (p = {verdict.p_value})")
    assert detector.flagged_malicious, "the cheater should have been caught"
    print("the cheater was caught.")


if __name__ == "__main__":
    main()
