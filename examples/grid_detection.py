"""Detection-probability sweep on the static grid (a mini Figure 5).

Sweeps the percentage of misbehavior (PM) and prints, per sample size,
the fraction of observation windows that correctly diagnose the
malicious sender.  Also prints the honest baseline (PM = 0), whose rate
is the false-alarm probability (a mini Figure 6 point).

Run:  python examples/grid_detection.py
"""

from repro.experiments.runner import (
    collect_detection_samples,
    windowed_detection_rate,
)
from repro.experiments.scenarios import GridScenario


def main():
    load = 0.6
    sample_sizes = (10, 25, 50)
    windows = 6
    print(f"grid 7x8, load {load}, {windows} windows per point")
    header = "PM   " + "".join(f"  s={s:<4d}" for s in sample_sizes)
    print(header)
    print("-" * len(header))
    for pm in (0, 25, 50, 75, 100):
        scenario = GridScenario(load=load, seed=100 + pm)
        detector = collect_detection_samples(
            scenario,
            pm,
            target_samples=windows * max(sample_sizes),
            max_duration_s=120.0,
        )
        row = f"{pm:<5d}"
        for size in sample_sizes:
            rate, _n = windowed_detection_rate(
                detector, size, include_deterministic=False
            )
            row += f"  {rate:.2f}  "
        print(row + f"   ({len(detector.violations)} deterministic catches)")
    print()
    print("PM = 0 row is the false-alarm rate; it should be ~0.")
    print("Rates rise with PM and with the sample size, as in Figure 5.")


if __name__ == "__main__":
    main()
