"""Multi-hop traffic over the AODV substrate.

The paper's evaluation traffic is one-hop, but its network stack runs
AODV.  This example drives a 5-hop chain: AODV discovers the route,
the relay service forwards each packet hop by hop through the MAC
simulator (every hop contends for the channel), and we account for the
routing control overhead.

Run:  python examples/multihop_aodv.py
"""

from repro import Simulation, SimulationConfig
from repro.routing.relay import MultiHopService
from repro.traffic.queue import Packet


def main():
    # A 6-node chain, 240 m apart: 0 - 1 - 2 - 3 - 4 - 5.
    positions = [(240.0 * i, 0.0) for i in range(6)]
    sim = Simulation(positions, config=SimulationConfig(seed=8))

    relay = MultiHopService(sim.macs, link_provider=sim.medium)
    sim.add_listener(relay)

    # Inject 10 end-to-end packets at node 0 toward node 5.
    source, destination = 0, 5
    first_hop = relay.first_hop(source, destination)
    print(f"AODV route discovered: first hop {source} -> {first_hop}")
    route = relay.router.route(source, destination)
    print(f"hop count {route.hop_count}, control messages so far: "
          f"{relay.router.control_messages}")

    for _ in range(10):
        sim.macs[source].enqueue(
            Packet(
                source=source,
                destination=first_hop,
                final_destination=destination,
            )
        )

    sim.run(duration_s=5.0)

    print(f"packets delivered end-to-end: {relay.delivered_end_to_end}/10")
    print(f"MAC-level forwards performed: {relay.forwarded}")
    print(f"per-node MAC successes: "
          f"{ {i: sim.macs[i].stats.successes for i in sim.macs} }")
    assert relay.delivered_end_to_end == 10


if __name__ == "__main__":
    main()
