"""From verdicts to action: reputation scores and quarantine.

Runs three senders side by side — honest, mildly cheating (PM = 30),
and blatantly cheating (PM = 80) — each watched by a neighbor, and
folds every monitor's verdict stream into a reputation tracker.  The
blatant cheater collapses to quarantine fastest; the honest node keeps
a near-perfect score.

Run:  python examples/reputation_quarantine.py
"""

from repro import (
    BackoffMisbehaviorDetector,
    DetectorConfig,
    Flow,
    PercentageMisbehavior,
    Simulation,
    SimulationConfig,
    grid_positions,
)
from repro.core.reputation import ReputationTracker


def main():
    positions = grid_positions()
    # Three monitored senders in different grid neighborhoods, each with
    # the adjacent node to its right as receiver/monitor.
    subjects = {
        17: None,                        # honest
        27: PercentageMisbehavior(30),   # subtle cheat
        37: PercentageMisbehavior(80),   # blatant cheat
    }
    monitors = {sender: sender + 1 for sender in subjects}

    flows = [
        Flow(
            source=i,
            destination=monitors.get(i),
            load=0.6,
        )
        for i in range(len(positions))
        if i not in monitors.values()
    ]
    sim = Simulation(
        positions,
        flows=flows,
        policies={s: p for s, p in subjects.items() if p is not None},
        config=SimulationConfig(seed=77),
    )
    detectors = {}
    for sender, monitor in monitors.items():
        det = BackoffMisbehaviorDetector(
            monitor, sender,
            config=DetectorConfig(sample_size=25, known_n=5, known_k=5),
        )
        sim.add_listener(det)
        detectors[sender] = det

    sim.run(duration_s=15.0)

    tracker = ReputationTracker()
    print(f"{'sender':>7s} {'policy':>24s} {'score':>7s} {'quarantined':>12s} "
          f"{'mal/clean':>10s}")
    for sender, policy in subjects.items():
        tracker.ingest_all(sender, detectors[sender].verdicts)
        mal, clean = tracker.stats(sender)
        name = policy.describe() if policy else "honest"
        print(
            f"{sender:>7d} {name:>24s} {tracker.score(sender):7.3f} "
            f"{str(tracker.is_quarantined(sender)):>12s} {mal:>4d}/{clean:<4d}"
        )

    assert not tracker.is_quarantined(17)
    assert tracker.is_quarantined(37)
    print()
    print("The blatant cheater is quarantined; the honest node keeps its "
          "reputation.")


if __name__ == "__main__":
    main()
